"""§4.1 — certificate validation over a scan snapshot.

Keeps only records whose chains verify against the WebPKI, were inside
their validity window at scan time, and are not self-signed end-entity
certificates.  "During the period of our study, more than one third of the
hosts returned invalid certificates that we excluded."

The validator caches the *time-independent* part of verification (signature
links, trust anchoring) per end-entity fingerprint, so re-validating the
same shared hypergiant chains across 31 snapshots costs almost nothing.
A second cross-snapshot cache memoises each chain's effective validity
window (the intersection of every certificate's window, keyed by the
end-entity fingerprint), reducing the per-snapshot freshness check to two
comparisons — the same trick ``OffnetPipeline._org_cache`` plays for
organisation matching.  :meth:`CertificateValidator.cache_info` reports hit
counts so benches can surface the hit rate.

An ``allow_expired`` mode accepts otherwise-valid chains whose only defect
is the validity window — the §6.2 Netflix "w/ expired" analysis needs it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.scan.records import ScanSnapshot
from repro.timeline import Snapshot
from repro.x509.certificate import Certificate
from repro.x509.chain import CertificateChain
from repro.x509.store import RootStore
from repro.x509.verify import VerificationError, verify_chain

__all__ = [
    "ValidatedRecord",
    "ValidationStats",
    "ValidationCacheStats",
    "CertificateValidator",
]


@dataclass(frozen=True, slots=True)
class ValidatedRecord:
    """One surviving (IP, end-entity certificate) pair."""

    ip: int
    certificate: Certificate
    #: True when the chain was valid except for the validity window
    #: (only produced in ``allow_expired`` mode).
    expired_only: bool = False


@dataclass(frozen=True, slots=True)
class ValidationStats:
    """Bookkeeping for one validation pass."""

    total: int
    valid: int
    expired_only: int
    rejected: int

    @property
    def invalid_fraction(self) -> float:
        """Fraction of hosts whose certificates §4.1 excludes (expired ones
        count as invalid even when the allow-expired side channel keeps
        them for the Netflix analysis)."""
        if self.total == 0:
            return 0.0
        return (self.rejected + self.expired_only) / self.total


@dataclass(frozen=True, slots=True)
class ValidationCacheStats:
    """Hit/miss counters for the validator's two cross-snapshot caches."""

    static_hits: int = 0
    static_misses: int = 0
    window_hits: int = 0
    window_misses: int = 0

    def __add__(self, other: "ValidationCacheStats") -> "ValidationCacheStats":
        return ValidationCacheStats(
            static_hits=self.static_hits + other.static_hits,
            static_misses=self.static_misses + other.static_misses,
            window_hits=self.window_hits + other.window_hits,
            window_misses=self.window_misses + other.window_misses,
        )

    def __sub__(self, other: "ValidationCacheStats") -> "ValidationCacheStats":
        return ValidationCacheStats(
            static_hits=self.static_hits - other.static_hits,
            static_misses=self.static_misses - other.static_misses,
            window_hits=self.window_hits - other.window_hits,
            window_misses=self.window_misses - other.window_misses,
        )

    @property
    def hit_rate(self) -> float:
        """Combined hit fraction over both caches (0.0 when never queried)."""
        hits = self.static_hits + self.window_hits
        total = hits + self.static_misses + self.window_misses
        return hits / total if total else 0.0


class CertificateValidator:
    """Validates scan records against a trust store, with caching."""

    def __init__(self, store: RootStore) -> None:
        self._store = store
        #: fingerprint -> statically_ok (chain links + trust anchoring).
        self._static_cache: dict[str, bool] = {}
        #: fingerprint -> the chain's effective validity window
        #: (max notBefore, min notAfter over every chain certificate).
        self._window_cache: dict[str, tuple[Snapshot, Snapshot]] = {}
        self._static_hits = 0
        self._static_misses = 0
        self._window_hits = 0
        self._window_misses = 0

    def cache_info(self) -> ValidationCacheStats:
        """Cumulative hit/miss counters for both cross-snapshot caches."""
        return ValidationCacheStats(
            static_hits=self._static_hits,
            static_misses=self._static_misses,
            window_hits=self._window_hits,
            window_misses=self._window_misses,
        )

    def _static_ok(self, chain: CertificateChain) -> bool:
        """Time-independent checks: self-signed leaf, links, trust anchor."""
        fingerprint = chain.end_entity.fingerprint
        cached = self._static_cache.get(fingerprint)
        if cached is not None:
            self._static_hits += 1
            return cached
        self._static_misses += 1
        # Verify at the leaf's own notBefore: any failure then is structural
        # (window errors cannot occur at a time the leaf itself allows,
        # unless an intermediate's window mismatches — treated as invalid).
        result = verify_chain(chain, self._store, chain.end_entity.not_before)
        ok = bool(result) or result.error in (
            VerificationError.EXPIRED,
            VerificationError.NOT_YET_VALID,
        )
        if not bool(result) and ok:
            # Window trouble even at the leaf's notBefore means some other
            # certificate's window never overlaps: count as structurally
            # broken only if the signature/trust part also fails; re-check
            # mid-way through the leaf window for robustness.
            midpoint = chain.end_entity.not_before.plus_months(
                max(0, chain.end_entity.validity_months // 2)
            )
            ok = bool(verify_chain(chain, self._store, midpoint))
        self._static_cache[fingerprint] = ok
        return ok

    def _validity_window(self, chain: CertificateChain) -> tuple[Snapshot, Snapshot]:
        """The snapshots during which *every* chain certificate is inside
        its validity window (memoised per end-entity fingerprint — the
        window never changes, only the snapshot we test it against)."""
        fingerprint = chain.end_entity.fingerprint
        window = self._window_cache.get(fingerprint)
        if window is not None:
            self._window_hits += 1
            return window
        self._window_misses += 1
        window = (
            max(c.not_before for c in chain.certificates),
            min(c.not_after for c in chain.certificates),
        )
        self._window_cache[fingerprint] = window
        return window

    def validate_snapshot(
        self,
        scan: ScanSnapshot,
        allow_expired: bool = False,
        registry: MetricsRegistry | None = None,
    ) -> tuple[list[ValidatedRecord], ValidationStats]:
        """Apply §4.1 to every TLS record of a scan snapshot.

        When ``registry`` is given, the pass also emits its observability
        counters: ``validation_records_total{verdict=...}`` and the
        cross-snapshot cache's ``validation_cache_events{cache=, event=}``
        deltas incurred by *this* call (cache state persists across
        snapshots; the delta is what belongs to the snapshot at hand).
        """
        cache_before = self.cache_info() if registry is not None else None
        when = scan.snapshot
        records: list[ValidatedRecord] = []
        valid = expired_only = rejected = 0
        for record in scan.tls_records:
            chain = record.chain
            leaf = chain.end_entity
            if leaf.is_self_signed and not leaf.is_ca:
                rejected += 1
                continue
            if not self._static_ok(chain):
                rejected += 1
                continue
            window_start, window_end = self._validity_window(chain)
            in_window = window_start <= when <= window_end
            if in_window:
                valid += 1
                records.append(ValidatedRecord(ip=record.ip, certificate=leaf))
            elif allow_expired:
                expired_only += 1
                records.append(
                    ValidatedRecord(ip=record.ip, certificate=leaf, expired_only=True)
                )
            else:
                rejected += 1
        stats = ValidationStats(
            total=len(scan.tls_records),
            valid=valid,
            expired_only=expired_only,
            rejected=rejected,
        )
        if registry is not None and cache_before is not None:
            self._emit(registry, stats, self.cache_info() - cache_before)
        return records, stats

    @staticmethod
    def _emit(
        registry: MetricsRegistry,
        stats: ValidationStats,
        delta: ValidationCacheStats,
    ) -> None:
        for verdict, count in (
            ("valid", stats.valid),
            ("expired_only", stats.expired_only),
            ("rejected", stats.rejected),
        ):
            registry.counter("validation_records_total", verdict=verdict).inc(count)
        for cache, event, count in (
            ("static", "hit", delta.static_hits),
            ("static", "miss", delta.static_misses),
            ("window", "hit", delta.window_hits),
            ("window", "miss", delta.window_misses),
        ):
            registry.counter(
                "validation_cache_events", cache=cache, event=event
            ).inc(count)
