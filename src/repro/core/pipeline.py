"""The longitudinal off-net pipeline — §4 end to end, per snapshot.

For every snapshot of a corpus the pipeline:

1. validates certificates (§4.1), keeping an expired-but-structurally-sound
   side channel for the Netflix analysis;
2. learns each hypergiant's TLS fingerprint from its own address space
   (§4.2, with the HG AS sets from the Appendix A.2 reverse org lookup);
3. finds candidate off-nets with the all-dNSNames rule (§4.3);
4. confirms candidates against HTTP(S) header fingerprints (§4.5) learned
   once from the configured learning snapshot (§4.4; the paper uses the
   September 2020 Rapid7 corpus);
5. maps confirmed IPs to ASes (Appendix A.1) and records every variant the
   evaluation section needs (certs-only, or/and header modes, the Netflix
   expired and HTTP-only restorations, the Cloudflare filter).

The per-HG steps are also available as standalone functions
(:mod:`repro.core.tls_fingerprint`, :mod:`repro.core.candidates`, ...); the
pipeline fuses their loops for speed but keeps identical semantics — a
property the test suite asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import Candidate
from repro.core.cloudflare import is_cloudflare_customer_cert
from repro.core.confirm import confirm_candidates
from repro.core.footprint import FootprintSnapshot, PipelineResult
from repro.core.header_fingerprint import learn_header_fingerprints
from repro.core.validation import CertificateValidator, ValidatedRecord, ValidationStats
from repro.hypergiants.profiles import HEADER_RULES, HYPERGIANTS, HeaderRule
from repro.scan.records import ScanSnapshot
from repro.net.asn import ASN
from repro.timeline import Snapshot
from repro.x509.certificate import Certificate

__all__ = ["PipelineOptions", "OffnetPipeline"]


@dataclass(frozen=True, slots=True)
class PipelineOptions:
    """Pipeline switches (defaults = the paper's methodology; each switch
    exists for an ablation bench)."""

    corpus: str = "rapid7"
    #: §4.1 on/off (off admits expired/self-signed/untrusted certificates).
    validate_certificates: bool = True
    #: §4.3's all-dNSNames-subset rule on/off.
    require_all_dnsnames: bool = True
    #: §4.5 header confirmation on/off (off reports candidates as final).
    header_confirmation: bool = True
    #: Learn Table 4 from the corpus (§4.4) or use the curated rules.
    learn_headers: bool = True
    #: Which snapshot to learn header fingerprints from (paper: Sep. 2020).
    header_learning_snapshot: Snapshot = Snapshot(2020, 10)
    #: The Netflix default-nginx acceptance (§4.4).
    netflix_nginx_rule: bool = True
    #: The §7 edge-CDN conflict priority.
    edge_priority: bool = True
    #: §7 future work: merge the IPv6 research corpus and use dual-stack
    #: IP-to-AS lookups ("our inference approach is IP protocol-agnostic").
    include_ipv6: bool = False


class OffnetPipeline:
    """Runs the §4 methodology over a world's scan corpuses."""

    def __init__(self, world, options: PipelineOptions | None = None) -> None:
        self.world = world
        self.options = options or PipelineOptions()
        self._validator = CertificateValidator(world.root_store)
        self._keywords = tuple(hg.key for hg in HYPERGIANTS)
        # Appendix A.2: reverse org lookup per HG keyword.
        organizations = world.topology.organizations
        self._hg_ases: dict[str, frozenset[ASN]] = {
            key: organizations.search_by_name(key) for key in self._keywords
        }
        self._all_hg_ases = frozenset(
            asn for ases in self._hg_ases.values() for asn in ases
        )
        self._org_cache: dict[str, tuple[str, ...]] = {}
        self._header_rules: dict[str, tuple[HeaderRule, ...]] | None = None

    # -- public API ------------------------------------------------------------

    @classmethod
    def for_world(cls, world, **option_overrides) -> "OffnetPipeline":
        """Convenience constructor with keyword option overrides."""
        options = PipelineOptions(**option_overrides) if option_overrides else None
        return cls(world, options)

    def run(self, snapshots: tuple[Snapshot, ...] | None = None) -> PipelineResult:
        """Run the full pipeline over ``snapshots`` (default: all the corpus
        offers) and return the longitudinal result."""
        profile = self.world.scanner(self.options.corpus).profile
        if snapshots is None:
            snapshots = tuple(
                s for s in self.world.snapshots if s >= profile.available_since
            )
        netflix_ever_candidates: set[int] = set()
        by_snapshot: dict[Snapshot, FootprintSnapshot] = {}
        for snapshot in snapshots:
            by_snapshot[snapshot] = self._run_snapshot(snapshot, netflix_ever_candidates)
        return PipelineResult(
            corpus=self.options.corpus,
            snapshots=tuple(snapshots),
            by_snapshot=by_snapshot,
        )

    def header_rules(self) -> dict[str, tuple[HeaderRule, ...]]:
        """The header fingerprints in force: learned from the learning
        snapshot when possible (§4.4), else the curated Table 4."""
        if self._header_rules is not None:
            return self._header_rules
        rules: dict[str, tuple[HeaderRule, ...]] = dict(HEADER_RULES)
        if self.options.learn_headers:
            learned = self._learn_rules()
            if learned is not None:
                # Keep curated rules for HGs the learning pass missed
                # entirely (no on-net header responses in the corpus).
                for hypergiant, hg_rules in learned.items():
                    if hg_rules:
                        rules[hypergiant] = hg_rules
        self._header_rules = rules
        return rules

    # -- internals ---------------------------------------------------------------

    def _learn_rules(self) -> dict[str, tuple[HeaderRule, ...]] | None:
        options = self.options
        profile = self.world.scanner(options.corpus).profile
        learning_snapshot = options.header_learning_snapshot
        if learning_snapshot < profile.available_since:
            return None
        scan = self.world.scan(options.corpus, learning_snapshot)
        if not scan.http_records:
            return None
        records, _ = self._validated(scan)
        ip2as = self.world.ip2as(learning_snapshot)
        onnet_ips: dict[str, frozenset[int]] = {}
        for keyword in self._keywords:
            hg_ases = self._hg_ases[keyword]
            ips = set()
            for record in records:
                if record.expired_only:
                    continue
                if keyword not in self._hgs_for_org(record.certificate.subject.organization):
                    continue
                if ip2as.lookup(record.ip) & hg_ases:
                    ips.add(record.ip)
            onnet_ips[keyword] = frozenset(ips)
        all_onnet = frozenset(ip for ips in onnet_ips.values() for ip in ips)
        background = frozenset(
            record.ip
            for index, record in enumerate(scan.http_records)
            if index % 3 == 0 and record.ip not in all_onnet
        )
        return learn_header_fingerprints(scan, onnet_ips, background)

    def _validated(self, scan) -> tuple[list[ValidatedRecord], ValidationStats]:
        if not self.options.validate_certificates:
            records = [
                ValidatedRecord(ip=r.ip, certificate=r.chain.end_entity)
                for r in scan.tls_records
            ]
            stats = ValidationStats(
                total=len(scan.tls_records),
                valid=len(records),
                expired_only=0,
                rejected=0,
            )
            return records, stats
        return self._validator.validate_snapshot(scan, allow_expired=True)

    def _hgs_for_org(self, organization: str) -> tuple[str, ...]:
        """Which HG keywords appear in an Organization string (memoised —
        organisation strings repeat heavily across records and snapshots)."""
        cached = self._org_cache.get(organization)
        if cached is None:
            lowered = organization.lower()
            cached = tuple(k for k in self._keywords if k in lowered)
            self._org_cache[organization] = cached
        return cached

    def _scan_and_map(self, snapshot: Snapshot):
        """The corpus and IP-to-AS view for one snapshot, optionally merged
        with the IPv6 research corpus (§7 future work)."""
        world = self.world
        scan = world.scan(self.options.corpus, snapshot)
        ip2as = world.ip2as(snapshot)
        if self.options.include_ipv6:
            ipv6_scan = getattr(world, "ipv6_scan", None)
            if ipv6_scan is None:
                raise ValueError(
                    "include_ipv6 requires a world with an IPv6 corpus "
                    "(file-backed datasets are IPv4-only)"
                )
            v6 = ipv6_scan(snapshot)
            merged = ScanSnapshot(
                scanner=f"{scan.scanner}+ipv6", snapshot=snapshot
            )
            merged.tls_records = scan.tls_records + v6.tls_records
            merged.http_records = scan.http_records + v6.http_records
            scan = merged
            ip2as = world.ip2as_dual(snapshot)
        return scan, ip2as

    def _run_snapshot(
        self, snapshot: Snapshot, netflix_ever_candidates: set[int]
    ) -> FootprintSnapshot:
        options = self.options
        scan, ip2as = self._scan_and_map(snapshot)
        records, stats = self._validated(scan)

        # Single pass: resolve origins and keyword matches per record.
        onnet_ips: dict[str, set[int]] = {k: set() for k in self._keywords}
        fingerprints: dict[str, set[str]] = {k: set() for k in self._keywords}
        matching: list[tuple[ValidatedRecord, frozenset[ASN], tuple[str, ...]]] = []
        for record in records:
            hgs = self._hgs_for_org(record.certificate.subject.organization)
            if not hgs:
                continue
            origins = ip2as.lookup(record.ip)
            if not origins:
                continue
            matching.append((record, origins, hgs))
            if record.expired_only:
                continue
            for keyword in hgs:
                if origins & self._hg_ases[keyword]:
                    onnet_ips[keyword].add(record.ip)
                    fingerprints[keyword].update(
                        n.lower() for n in record.certificate.dns_names
                    )

        # §4.3 candidates per HG (plus the Netflix expired variant).
        candidates: dict[str, list[Candidate]] = {k: [] for k in self._keywords}
        netflix_expired: list[Candidate] = []
        for record, origins, hgs in matching:
            for keyword in hgs:
                names = fingerprints[keyword]
                if not names:
                    continue
                if origins & self._hg_ases[keyword]:
                    continue
                if options.require_all_dnsnames and not all(
                    n.lower() in names for n in record.certificate.dns_names
                ):
                    continue
                candidate = Candidate(
                    ip=record.ip,
                    certificate=record.certificate,
                    ases=origins,
                    expired_only=record.expired_only,
                )
                if record.expired_only:
                    if keyword == "netflix":
                        netflix_expired.append(candidate)
                    continue
                candidates[keyword].append(candidate)

        footprint = FootprintSnapshot(
            snapshot=snapshot,
            raw_ip_count=scan.ip_count,
            raw_certificate_count=scan.unique_certificates(),
            validation=stats,
        )
        footprint.onnet_ips = {k: frozenset(v) for k, v in onnet_ips.items() if v}

        rules = self.header_rules() if options.header_confirmation else {}
        for keyword in self._keywords:
            found = candidates[keyword]
            if not found:
                continue
            footprint.candidate_ips[keyword] = frozenset(c.ip for c in found)
            footprint.candidate_ases[keyword] = _ases_of(found)
            if options.header_confirmation:
                confirmed = confirm_candidates(
                    keyword, found, scan, rules,
                    mode="or",
                    netflix_nginx_rule=options.netflix_nginx_rule,
                    edge_priority=options.edge_priority,
                )
                confirmed_and = confirm_candidates(
                    keyword, found, scan, rules,
                    mode="and",
                    netflix_nginx_rule=options.netflix_nginx_rule,
                    edge_priority=options.edge_priority,
                )
                footprint.confirmed_ips[keyword] = frozenset(
                    c.candidate.ip for c in confirmed
                )
                footprint.confirmed_ases[keyword] = _ases_of(
                    [c.candidate for c in confirmed]
                )
                footprint.confirmed_and_ases[keyword] = _ases_of(
                    [c.candidate for c in confirmed_and]
                )
            else:
                footprint.confirmed_ips[keyword] = footprint.candidate_ips[keyword]
                footprint.confirmed_ases[keyword] = footprint.candidate_ases[keyword]
                footprint.confirmed_and_ases[keyword] = footprint.candidate_ases[keyword]

        # §7: the Cloudflare customer-certificate filter.
        cloudflare_candidates = candidates.get("cloudflare", [])
        surviving = [
            c for c in cloudflare_candidates
            if not is_cloudflare_customer_cert(c.certificate)
        ]
        footprint.cloudflare_filtered_ases = _ases_of(surviving)

        # §6.2: Netflix restorations.
        footprint.netflix_with_expired_ases = self._netflix_with_expired(
            snapshot, scan, candidates.get("netflix", []), netflix_expired, rules
        )
        footprint.netflix_restored_ases = self._netflix_nontls_restore(
            snapshot, scan, netflix_ever_candidates, ip2as
        )
        netflix_ever_candidates.update(footprint.candidate_ips.get("netflix", ()))
        netflix_ever_candidates.update(c.ip for c in netflix_expired)
        return footprint

    def _netflix_with_expired(
        self,
        snapshot: Snapshot,
        scan,
        valid_candidates: list[Candidate],
        expired_candidates: list[Candidate],
        rules,
    ) -> frozenset[ASN]:
        """Confirmed Netflix ASes when expired certificates are admitted."""
        merged = valid_candidates + expired_candidates
        if not merged:
            return frozenset()
        if not self.options.header_confirmation:
            return _ases_of(merged)
        confirmed = confirm_candidates(
            "netflix", merged, scan, rules,
            mode="or",
            netflix_nginx_rule=self.options.netflix_nginx_rule,
            edge_priority=self.options.edge_priority,
        )
        return _ases_of([c.candidate for c in confirmed])

    def _netflix_nontls_restore(
        self,
        snapshot: Snapshot,
        scan,
        ever_candidates: set[int],
        ip2as,
    ) -> frozenset[ASN]:
        """IPs that served Netflix certificates in the past, answer on port
        80 now, but are silent on 443 — restored as in §6.2."""
        if not ever_candidates:
            return frozenset()
        current_tls_ips = {record.ip for record in scan.tls_records}
        restored: set[ASN] = set()
        for record in scan.http_records:
            if record.port != 80:
                continue
            ip = record.ip
            if ip not in ever_candidates or ip in current_tls_ips:
                continue
            restored.update(ip2as.lookup(ip))
        return frozenset(restored)


def _ases_of(candidates: list[Candidate]) -> frozenset[ASN]:
    ases: set[ASN] = set()
    for candidate in candidates:
        ases |= candidate.ases
    return frozenset(ases)
