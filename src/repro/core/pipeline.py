"""The longitudinal off-net pipeline — §4 end to end, per snapshot.

For every snapshot of a corpus the pipeline:

1. validates certificates (§4.1), keeping an expired-but-structurally-sound
   side channel for the Netflix analysis;
2. learns each hypergiant's TLS fingerprint from its own address space
   (§4.2, with the HG AS sets from the Appendix A.2 reverse org lookup);
3. finds candidate off-nets with the all-dNSNames rule (§4.3);
4. confirms candidates against HTTP(S) header fingerprints (§4.5) learned
   once from the configured learning snapshot (§4.4; the paper uses the
   September 2020 Rapid7 corpus);
5. maps confirmed IPs to ASes (Appendix A.1) and records every variant the
   evaluation section needs (certs-only, or/and header modes, the Netflix
   expired and HTTP-only restorations, the Cloudflare filter).

The pipeline consumes any :class:`~repro.datasets.DataSource` — the live
synthetic :class:`~repro.world.World` or a file-backed
:class:`~repro.datasets.FileDataset` — and factors into a *pure*
per-snapshot phase (:meth:`OffnetPipeline.run_snapshot`) plus an ordered
cross-snapshot merge (:meth:`OffnetPipeline.merge_outcomes`; the §6.2
Netflix "ever a candidate" accumulator is the only cross-snapshot state).
``PipelineOptions(jobs=N)`` maps the pure phase over N worker processes
via :class:`~repro.core.executor.ParallelExecutor`; because the merge is an
explicit ordered reduction, parallel results are bit-identical to serial
ones — a property the test suite asserts.

The per-snapshot phase itself is a typed stage graph
(:mod:`repro.core.stages`): §4's dataflow as declared stages with
content-addressed artifacts, so re-runs reuse every stage whose inputs,
option subset and code version are unchanged.  The cache is pluggable —
in-memory by default, tiered onto disk under ``PipelineOptions.cache_dir``
(the CLI's ``--cache-dir``), which is also what ``--resume`` reads after an
interrupted run.  Funnel counters travel inside the cached artifacts, so
runs are bit-identical with the cache on or off — a property the test
suite asserts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.candidates import Candidate
from repro.core.confirm import confirm_candidates
from repro.core.executor import SnapshotExecutor, make_executor
from repro.core.footprint import FootprintSnapshot, PipelineResult, SnapshotOutcome
from repro.core.header_fingerprint import learn_header_fingerprints
from repro.core.signals import parse_policy, signal_names
from repro.core.stages import (
    TERMINAL_STAGES,
    ArtifactCache,
    DiskCache,
    MemoryCache,
    StageContext,
    TieredCache,
    assemble_outcome,
    build_offnet_graph,
    snapshot_fingerprint,
    source_fingerprint,
)
from repro.core.validation import (
    CertificateValidator,
    ValidatedRecord,
    ValidationStats,
    passthrough_records,
)
from repro.datasets.sharding import Shard, ShardPlan, plan_shards
from repro.datasets.source import DataSource
from repro.hypergiants.profiles import HEADER_RULES, HYPERGIANTS, HeaderRule
from repro.robustness import IngestPolicy
from repro.obs.metrics import MetricsRegistry
from repro.obs.timers import Stopwatch
from repro.scan.records import ScanSnapshot
from repro.net.asn import ASN
from repro.timeline import Snapshot

__all__ = ["PipelineOptions", "OffnetPipeline"]


@dataclass(frozen=True, slots=True)
class PipelineOptions:
    """Pipeline switches (defaults = the paper's methodology; each switch
    exists for an ablation bench).

    Three kinds of field live here:

    * **methodology switches** (``validate_certificates``,
      ``require_all_dnsnames``, ``header_confirmation``, ...) — each
      maps to one §4 rule and changes the inferred numbers;
    * **execution knobs** (``jobs``, ``shard_size``, ``cache_dir``,
      ``quarantine_dir``) — change how the run executes, never what it
      computes; results are bit-identical across their settings;
    * **ingestion policy** (``on_error``) — methodology on a dirty
      corpus (it decides which records are inferred from), a no-op on
      a clean one.
    """

    corpus: str = "rapid7"
    #: §4.1 on/off (off admits expired/self-signed/untrusted certificates).
    validate_certificates: bool = True
    #: §4.3's all-dNSNames-subset rule on/off.
    require_all_dnsnames: bool = True
    #: §4.5 header confirmation on/off (off reports candidates as final).
    header_confirmation: bool = True
    #: Learn Table 4 from the corpus (§4.4) or use the curated rules.
    learn_headers: bool = True
    #: Which snapshot to learn header fingerprints from (paper: Sep. 2020).
    header_learning_snapshot: Snapshot = Snapshot(2020, 10)
    #: The Netflix default-nginx acceptance (§4.4).
    netflix_nginx_rule: bool = True
    #: The §7 edge-CDN conflict priority.
    edge_priority: bool = True
    #: Which confirmation signals the §4.5 step runs (the CLI's
    #: ``--signals``), in priority order, from the signal registry
    #: (:func:`repro.core.signals.signal_names`).  The default runs the
    #: header signal alone — the paper's methodology.
    signals: tuple[str, ...] = ("header",)
    #: How signal verdicts fold into a confirmation (the CLI's
    #: ``--confirm-policy``): ``paper-default`` (header decides, the
    #: original behaviour), ``require-<k>`` or ``priority`` — see
    #: :mod:`repro.core.signals.policy`.
    confirm_policy: str = "paper-default"
    #: §7 future work: merge the IPv6 research corpus and use dual-stack
    #: IP-to-AS lookups ("our inference approach is IP protocol-agnostic").
    include_ipv6: bool = False
    #: Worker processes for the per-snapshot phase (1 = serial; N > 1 forks
    #: a process pool; 0 = auto, one worker per CPU core; output is
    #: identical for every setting).
    jobs: int = 1
    #: Snapshots per shard for the parallel executor (the CLI's
    #: ``--shard-size``).  ``None`` (the default) lets the planner
    #: cost-balance the snapshots into ``jobs`` contiguous shards; a
    #: fixed size forces that granularity instead.  Like ``jobs``, an
    #: execution knob: results are bit-identical for every setting.
    shard_size: int | None = None
    #: Directory for the on-disk stage-artifact cache (the CLI's
    #: ``--cache-dir``).  ``None`` keeps artifacts in memory only.  Like
    #: ``jobs``, this is an execution detail: results are bit-identical
    #: with any cache configuration.
    cache_dir: str | None = None
    #: How corpus ingestion reacts to malformed records (the CLI's
    #: ``--on-error``): ``"strict"`` fails fast with the file/line/offset
    #: of the first bad record, ``"lenient"`` quarantines bad records and
    #: infers from the survivors, ``"repair"`` additionally applies the
    #: deterministic fixes in
    #: :data:`~repro.robustness.REPAIRABLE_CLASSES`.  On a clean corpus
    #: all three modes produce bit-identical results.  Unlike ``jobs``
    #: this is methodology, not an execution detail — on a dirty corpus
    #: it changes which records are inferred from — so it participates in
    #: stage cache keys and the report's ``options`` section.
    on_error: str = "strict"
    #: Where lenient/repair runs write quarantine JSONL files, one per
    #: corpus snapshot (the CLI's ``--quarantine-dir``).  ``None`` keeps
    #: quarantine accounting in memory (it still reaches the run
    #: report).  An execution detail: never part of cache keys.
    quarantine_dir: str | None = None

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError(
                f"PipelineOptions.jobs must be >= 0, got {self.jobs} "
                "(0 selects one worker per CPU core, 1 runs serially, "
                "N > 1 forks N workers)"
            )
        if self.shard_size is not None and self.shard_size < 1:
            raise ValueError(
                f"PipelineOptions.shard_size must be >= 1, got {self.shard_size}"
            )
        if not isinstance(self.signals, tuple):
            object.__setattr__(self, "signals", tuple(self.signals))
        if not self.signals:
            raise ValueError(
                "PipelineOptions.signals must name at least one signal; "
                f"registered: {', '.join(signal_names())}"
            )
        if len(set(self.signals)) != len(self.signals):
            raise ValueError(
                f"PipelineOptions.signals has duplicates: {self.signals}"
            )
        registered = set(signal_names())
        for name in self.signals:
            if name not in registered:
                raise ValueError(
                    f"unknown confirmation signal {name!r}; "
                    f"registered: {', '.join(signal_names())}"
                )
        # Delegates policy-spec validation so the two surfaces cannot
        # drift; paper-default folds on the header verdict, so it needs
        # the header signal configured.
        parse_policy(self.confirm_policy)
        if self.confirm_policy == "paper-default" and "header" not in self.signals:
            raise ValueError(
                "confirm_policy='paper-default' folds on the header signal's "
                f"verdict, but signals={self.signals} does not include it"
            )
        # Delegates mode validation (strict|lenient|repair) so the two
        # surfaces cannot drift.
        IngestPolicy(mode=self.on_error)

    def ingest_policy(self) -> IngestPolicy:
        """The :class:`~repro.robustness.IngestPolicy` these options select."""
        return IngestPolicy(mode=self.on_error, quarantine_dir=self.quarantine_dir)


class OffnetPipeline:
    """Runs the §4 methodology over a data source's scan corpuses.

    Usage::

        result = OffnetPipeline(source).run()            # all snapshots
        result = OffnetPipeline(source, PipelineOptions(jobs=4)).run()

    ``source`` is any :class:`~repro.datasets.DataSource` — a synthetic
    :class:`~repro.world.World` or a file-backed
    :class:`~repro.datasets.FileDataset`.  ``options`` holds the
    methodology switches and execution knobs (see
    :class:`PipelineOptions`); ``cache`` overrides the stage-artifact
    cache (default: in-memory, or memory+disk when
    ``options.cache_dir`` is set).

    The main entry points: :meth:`run` (the longitudinal result),
    :meth:`run_snapshot` (the pure per-snapshot phase),
    :meth:`run_stages`/:meth:`probe_cache`/:meth:`describe_stages`
    (the stage-graph surface behind the CLI's ``--stages`` and
    ``--resume``), and :meth:`header_rules` (the §4.4 fingerprints in
    force).
    """

    def __init__(
        self,
        source: DataSource,
        options: PipelineOptions | None = None,
        cache: ArtifactCache | None = None,
    ) -> None:
        if not isinstance(source, DataSource):
            missing = [
                name
                for name in ("snapshots", "root_store", "topology", "scanner", "scan", "ip2as")
                if not hasattr(source, name)
            ]
            raise TypeError(
                f"{type(source).__name__} does not implement the DataSource "
                f"protocol (missing: {', '.join(missing) or 'structural members'})"
            )
        self.source = source
        self.options = options or PipelineOptions()
        # Thread the ingestion error policy into the source.  Only parsing
        # sources (FileDataset and friends) expose configure_ingest();
        # in-memory sources never meet a parser, so a non-strict policy
        # there would silently do nothing — refuse it instead.
        configure_ingest = getattr(source, "configure_ingest", None)
        if configure_ingest is not None:
            configure_ingest(self.options.ingest_policy())
        elif self.options.on_error != "strict" or self.options.quarantine_dir:
            raise ValueError(
                f"on_error={self.options.on_error!r} needs a data source "
                "that parses corpus files (one with configure_ingest(), "
                f"like FileDataset); {type(source).__name__} builds "
                "snapshots in memory and has no records to quarantine"
            )
        self._validator = CertificateValidator(source.root_store)
        self._keywords = tuple(hg.key for hg in HYPERGIANTS)
        # Appendix A.2: reverse org lookup per HG keyword.
        organizations = source.topology.organizations
        self._hg_ases: dict[str, frozenset[ASN]] = {
            key: organizations.search_by_name(key) for key in self._keywords
        }
        self._all_hg_ases = frozenset(
            asn for ases in self._hg_ases.values() for asn in ases
        )
        # Bounded LRU for stray per-string lookups (header learning etc.).
        # The hot paths never touch it: they map the snapshot store's
        # interned-organization table once per snapshot instead, so the
        # per-process memory for org matching is O(unique orgs per
        # snapshot), not O(every org string ever seen).
        self._org_cache: OrderedDict[str, tuple[str, ...]] = OrderedDict()
        self._header_rules: dict[str, tuple[HeaderRule, ...]] | None = None
        # The per-snapshot phase as a stage graph with content-addressed
        # artifacts.  Disk caching needs the source to name its own data
        # (a stale hit against different data would be silent corruption);
        # sources without a fingerprint() still get in-process caching
        # under an object-identity token.
        self._graph = build_offnet_graph()
        fingerprint = source_fingerprint(source)
        self._source_token = fingerprint or f"mem:{id(source):x}"
        if cache is not None:
            self._cache: ArtifactCache = cache
        elif self.options.cache_dir is not None:
            if fingerprint is None:
                raise ValueError(
                    "cache_dir requires a data source with a fingerprint() "
                    f"({type(source).__name__} cannot name its data across "
                    "processes, so on-disk artifacts could go stale silently)"
                )
            self._cache = TieredCache(MemoryCache(), DiskCache(self.options.cache_dir))
        else:
            self._cache = MemoryCache()

    # -- public API ------------------------------------------------------------

    def run(
        self,
        snapshots: tuple[Snapshot, ...] | None = None,
        executor: SnapshotExecutor | None = None,
    ) -> PipelineResult:
        """Run the full pipeline over ``snapshots`` (default: all the corpus
        offers) and return the longitudinal result.

        The per-snapshot phase is mapped by ``executor`` (default: the one
        ``options.jobs`` selects), then merged in snapshot order.
        """
        snapshots = self.select_snapshots(snapshots)
        if self.options.header_confirmation:
            # Learn the §4.4 rules once in the parent so forked workers
            # inherit them instead of re-learning per process.
            self.header_rules()
        if executor is None:
            executor = make_executor(self.options.jobs, self.options.shard_size)
        outcomes = executor.map_snapshots(self, snapshots)
        try:
            executor_meta = executor.describe()
        except NotImplementedError:  # a user-supplied bare strategy
            executor_meta = {"kind": type(executor).__name__}
        return self.merge_outcomes(snapshots, outcomes, executor_meta=executor_meta)

    def select_snapshots(
        self, snapshots: tuple[Snapshot, ...] | None = None
    ) -> tuple[Snapshot, ...]:
        """The snapshots a run would cover: the requested ones, or every
        snapshot the corpus scanner was live for."""
        if snapshots is not None:
            return tuple(snapshots)
        profile = self.source.scanner(self.options.corpus).profile
        return tuple(
            s for s in self.source.snapshots if s >= profile.available_since
        )

    def header_rules(self) -> dict[str, tuple[HeaderRule, ...]]:
        """The header fingerprints in force: learned from the learning
        snapshot when possible (§4.4), else the curated Table 4."""
        if self._header_rules is not None:
            return self._header_rules
        rules: dict[str, tuple[HeaderRule, ...]] = dict(HEADER_RULES)
        if self.options.learn_headers:
            learned = self._learn_rules()
            if learned is not None:
                # Keep curated rules for HGs the learning pass missed
                # entirely (no on-net header responses in the corpus).
                for hypergiant, hg_rules in learned.items():
                    if hg_rules:
                        rules[hypergiant] = hg_rules
        self._header_rules = rules
        return rules

    # -- the stage graph surface ---------------------------------------------------

    def stage_names(self) -> tuple[str, ...]:
        """Every stage of the per-snapshot graph, in topological order."""
        return self._graph.order

    def describe_stages(self) -> list[dict]:
        """One row per stage (name, deps, option subset, artifact notes) —
        what the CLI's ``--stages list`` prints."""
        return [
            {
                "name": stage.name,
                "deps": list(stage.deps),
                "options": list(stage.option_keys),
                "version": stage.version,
                "cacheable": stage.cacheable,
                "heavy": stage.heavy,
                "produces": stage.produces,
            }
            for name in self._graph.order
            for stage in (self._graph.stages[name],)
        ]

    def probe_cache(
        self, snapshots: tuple[Snapshot, ...] | None = None
    ) -> dict[Snapshot, dict[str, bool]]:
        """Which stage artifacts are already cached, per snapshot, without
        executing anything — what ``--resume`` reports before restarting."""
        return {
            snapshot: self._graph.probe(
                self.options, self.snapshot_token(snapshot), self._cache
            )
            for snapshot in self.select_snapshots(snapshots)
        }

    def run_stages(
        self,
        targets: tuple[str, ...],
        snapshots: tuple[Snapshot, ...] | None = None,
    ) -> MetricsRegistry:
        """Force only ``targets`` (plus dependencies) per snapshot — the
        CLI's ``--stages``, for warming a cache or debugging a subgraph —
        and return the merged metrics (stage timings + cache events)."""
        if self.options.header_confirmation and (
            {"confirm", "netflix"} & set(self._graph.closure(targets))
        ):
            self.header_rules()
        merged = MetricsRegistry()
        for snapshot in self.select_snapshots(snapshots):
            registry = MetricsRegistry()
            self._graph.execute(
                StageContext(pipeline=self, snapshot=snapshot, options=self.options),
                self.snapshot_token(snapshot),
                registry,
                cache=self._cache,
                targets=targets,
            )
            merged.merge(registry)
        return merged

    def seed_artifacts(self, shipped: list[tuple[str, str, object]]) -> None:
        """Adopt light artifacts computed elsewhere (a forked worker's
        homeward shipment) into this process's cache."""
        for key, _stage, artifact in shipped:
            self._cache.put(key, artifact)  # type: ignore[arg-type]

    # -- the shard surface (the parallel executor's unit of work) ----------------

    def shard_plan(
        self,
        snapshots: tuple[Snapshot, ...] | None = None,
        *,
        jobs: int | None = None,
        shard_size: int | None = None,
    ) -> ShardPlan:
        """Partition a run's snapshots into contiguous, cost-balanced
        shards for ``jobs`` workers (see :func:`~repro.datasets.plan_shards`).

        Per-snapshot costs come from the source's ``shard_cost`` probe
        when it has one (:class:`~repro.datasets.FileDataset` answers
        from corpus file headers without loading anything); sources
        without a probe — or snapshots whose files the probe cannot
        reach — fall back to uniform costs.  Planning must never be the
        thing that fails: a missing file surfaces later, in the scan
        stage, with its usual error.
        """
        snapshots = self.select_snapshots(snapshots)
        if jobs is None:
            jobs = max(self.options.jobs, 1)
        if shard_size is None:
            shard_size = self.options.shard_size
        costs: list[float] | None = None
        probe = getattr(self.source, "shard_cost", None)
        if probe is not None:
            try:
                costs = [
                    probe(self.options.corpus, snapshot) for snapshot in snapshots
                ]
            except (FileNotFoundError, OSError):
                costs = None
        return plan_shards(snapshots, costs, jobs=jobs, shard_size=shard_size)

    def run_shard(self, shard: Shard) -> tuple[list[SnapshotOutcome], list]:
        """Run one shard's snapshots in order — the parallel executor's
        per-worker task body.  Returns the outcomes plus the light stage
        artifacts the shard computed, deduplicated by key (snapshots of
        one shard can share e.g. the learned-rules artifact)."""
        outcomes: list[SnapshotOutcome] = []
        shipment: list[tuple[str, str, object]] = []
        seen: set[str] = set()
        for snapshot in shard.snapshots:
            outcome, shipped = self._run_snapshot_shipping(snapshot, shard=shard)
            outcomes.append(outcome)
            for key, stage, artifact in shipped:
                if key not in seen:
                    seen.add(key)
                    shipment.append((key, stage, artifact))
        return outcomes, shipment

    def trim_for_fork(self) -> None:
        """Drop state forked workers must not inherit copy-on-write —
        delegates to the source's ``trim_for_fork`` when it has one
        (:class:`~repro.datasets.FileDataset` clears its warm scan LRU;
        an in-memory :class:`~repro.world.World` keeps everything, since
        its snapshot stores *are* the data workers need)."""
        trim = getattr(self.source, "trim_for_fork", None)
        if trim is not None:
            trim()

    def snapshot_token(self, snapshot: Snapshot) -> str:
        """The content-addressed cache token for one snapshot's stage
        artifacts — ``snapshot_fingerprint(source, corpus, snapshot)``.
        The serve layer's delta ingestor compares these against an index's
        recorded tokens to decide which snapshots actually changed."""
        return snapshot_fingerprint(self._source_token, self.options.corpus, snapshot)

    # -- internals ---------------------------------------------------------------

    def _learn_rules(self) -> dict[str, tuple[HeaderRule, ...]] | None:
        options = self.options
        profile = self.source.scanner(options.corpus).profile
        learning_snapshot = options.header_learning_snapshot
        if learning_snapshot < profile.available_since:
            return None
        scan = self.source.scan(options.corpus, learning_snapshot)
        if not scan.http_records:
            return None
        records, _ = self._validated(scan)
        ip2as = self.source.ip2as(learning_snapshot)
        onnet_ips: dict[str, frozenset[int]] = {}
        for keyword in self._keywords:
            hg_ases = self._hg_ases[keyword]
            ips = set()
            for record in records:
                if record.expired_only:
                    continue
                if keyword not in self._hgs_for_org(record.certificate.subject.organization):
                    continue
                if ip2as.lookup(record.ip) & hg_ases:
                    ips.add(record.ip)
            onnet_ips[keyword] = frozenset(ips)
        all_onnet = frozenset(ip for ips in onnet_ips.values() for ip in ips)
        background = frozenset(
            record.ip
            for index, record in enumerate(scan.http_records)
            if index % 3 == 0 and record.ip not in all_onnet
        )
        return learn_header_fingerprints(scan, onnet_ips, background)

    def _validated(
        self, scan, registry: MetricsRegistry | None = None
    ) -> tuple[list[ValidatedRecord], ValidationStats]:
        if not self.options.validate_certificates:
            return passthrough_records(scan.store, registry)
        return self._validator.validate_snapshot(
            scan, allow_expired=True, registry=registry
        )

    #: Upper bound on the stray-lookup LRU (see ``_org_cache`` above).
    _ORG_CACHE_MAX = 4096

    def _hgs_for_org(self, organization: str) -> tuple[str, ...]:
        """Which HG keywords appear in an Organization string (memoised in
        a *bounded* LRU; the per-snapshot hot paths use
        :meth:`_org_table_hgs` over the store's interned table instead)."""
        cache = self._org_cache
        cached = cache.get(organization)
        if cached is not None:
            cache.move_to_end(organization)
            return cached
        lowered = organization.lower()
        cached = tuple(k for k in self._keywords if k in lowered)
        cache[organization] = cached
        if len(cache) > self._ORG_CACHE_MAX:
            cache.popitem(last=False)
        return cached

    def _org_table_hgs(self, store) -> list[tuple[str, ...]]:
        """HG keyword matches for every entry of a store's interned
        Organization table — the whole snapshot's org matching in
        O(unique organisations), no cross-snapshot state."""
        matches = []
        for organization in store.org_table:
            lowered = organization.lower()
            matches.append(tuple(k for k in self._keywords if k in lowered))
        return matches

    def _scan_and_map(self, snapshot: Snapshot, shard: Shard | None = None):
        """The corpus and IP-to-AS view for one snapshot, optionally merged
        with the IPv6 research corpus (§7 future work).

        Inside a shard, sources that offer a shard-local read path
        (``scan_for_shard``: same data, scan LRU held at one entry) are
        read through it — a worker visits each of its snapshots once, so
        retaining earlier stores only inflates peak RSS."""
        source = self.source
        scan_for_shard = getattr(source, "scan_for_shard", None)
        if shard is not None and scan_for_shard is not None:
            scan = scan_for_shard(self.options.corpus, snapshot)
        else:
            scan = source.scan(self.options.corpus, snapshot)
        ip2as = source.ip2as(snapshot)
        if self.options.include_ipv6:
            ipv6_scan = getattr(source, "ipv6_scan", None)
            if ipv6_scan is None:
                raise ValueError(
                    "include_ipv6 requires a world with an IPv6 corpus "
                    "(file-backed datasets are IPv4-only)"
                )
            v6 = ipv6_scan(snapshot)
            merged = ScanSnapshot(
                scanner=f"{scan.scanner}+ipv6", snapshot=snapshot
            )
            # Store-level merge: rows re-intern into one combined table, so
            # chains shared across the v4 and v6 corpuses dedup too.
            merged.store.extend(scan.store)
            merged.store.extend(v6.store)
            scan = merged
            ip2as = source.ip2as_dual(snapshot)
        return scan, ip2as

    # -- the pure per-snapshot phase ---------------------------------------------

    def run_snapshot(self, snapshot: Snapshot) -> SnapshotOutcome:
        """Everything §4 infers from one snapshot, with no cross-snapshot
        state: safe to execute for any subset of snapshots, in any order,
        in any process.  The Netflix restoration inputs ride along for
        :meth:`merge_outcomes`.

        The body is the stage graph of :mod:`repro.core.stages.offnet`:
        the scheduler forces the terminal stages, reusing every cached
        artifact whose key still matches, and every stage books its spans
        and funnel counts into a *fresh* per-snapshot
        :class:`~repro.obs.metrics.MetricsRegistry` that travels home
        inside the outcome — the unit the merge barrier folds
        deterministically.  Cache hits replay the counter fragment the
        original computation recorded, so the funnel is bit-identical
        whether a stage ran or hit.
        """
        outcome, _ = self._run_snapshot_shipping(snapshot, ship=False)
        return outcome

    def _run_snapshot_shipping(
        self, snapshot: Snapshot, ship: bool = True, shard: Shard | None = None
    ) -> tuple[SnapshotOutcome, list]:
        """:meth:`run_snapshot` plus the light artifacts the run computed,
        for the parallel executor to carry across the fork boundary.
        ``shard`` is threaded into the stage context as execution
        metadata only — it never reaches an artifact key."""
        registry = MetricsRegistry()
        shipment: list | None = [] if ship else None
        values = self._graph.execute(
            StageContext(
                pipeline=self, snapshot=snapshot, options=self.options, shard=shard
            ),
            self.snapshot_token(snapshot),
            registry,
            cache=self._cache,
            targets=TERMINAL_STAGES,
            shipment=shipment,
        )
        return assemble_outcome(snapshot, values, registry), shipment or []

    # -- the ordered cross-snapshot merge ------------------------------------------

    def merge_outcomes(
        self,
        snapshots: tuple[Snapshot, ...],
        outcomes: list[SnapshotOutcome],
        executor_meta: dict | None = None,
    ) -> PipelineResult:
        """Reduce per-snapshot outcomes, in snapshot order, into the
        longitudinal result.  The only cross-snapshot state is the §6.2
        Netflix "ever a candidate" accumulator; folding it here (rather
        than inside the per-snapshot phase) is what makes the phase pure
        and the parallel run bit-identical to the serial one.

        The same barrier folds the per-snapshot metrics registries:
        counters and histograms merge commutatively, and the snapshot
        ordering here is the one ordering both executors can honour, so
        a ``jobs=N`` run's merged registry counts exactly what the
        ``jobs=1`` run's does.
        """
        by_snapshot: dict[Snapshot, FootprintSnapshot] = {}
        metrics = MetricsRegistry()
        netflix_ever_candidates: set[int] = set()
        watch = Stopwatch(metrics)
        for snapshot, outcome in zip(snapshots, outcomes, strict=True):
            footprint = outcome.footprint
            if netflix_ever_candidates:
                restored: set[ASN] = set()
                for ip, ases in outcome.restorable.items():
                    if ip in netflix_ever_candidates:
                        restored.update(ases)
                footprint.netflix_restored_ases = frozenset(restored)
            netflix_ever_candidates.update(outcome.netflix_seen)
            by_snapshot[snapshot] = footprint
            metrics.merge(outcome.metrics)
        watch.lap("merge")
        scenario = self._scenario_meta()
        for event in scenario.get("events", ()):
            # Book the schedule at the merge barrier: it is pure config,
            # and the barrier runs once in the parent for every executor
            # and cache state, so eventful runs stay bit-identical too.
            metrics.counter("scenario_events_total", kind=event["kind"]).inc()
        return PipelineResult(
            corpus=self.options.corpus,
            snapshots=tuple(snapshots),
            by_snapshot=by_snapshot,
            metrics=metrics,
            run_meta={
                "options": self.options_meta(),
                "executor": dict(executor_meta or {}),
                "scenario": scenario,
            },
        )

    def _scenario_meta(self) -> dict:
        """The source's scenario identity (duck-typed: file datasets and
        plain worlds without events report an empty schedule)."""
        meta = getattr(self.source, "scenario_meta", None)
        return meta() if callable(meta) else {}

    def options_meta(self) -> dict:
        """The methodology switches for the run report's ``options``
        section — also the options identity the serve layer's delta
        ingestor mixes into index tokens (changed methodology must
        invalidate indexed outcomes).  ``jobs``, ``shard_size``, ``cache_dir`` and
        ``quarantine_dir`` are
        deliberately absent: they are execution details (reported under
        ``executor`` / the cache counters / the ``ingest`` section), and
        the deterministic view must compare equal across ``jobs`` and
        cache configurations.  ``on_error`` *is* present: on a dirty
        corpus it changes which records the run infers from."""
        options = self.options
        return {
            "corpus": options.corpus,
            "validate_certificates": options.validate_certificates,
            "require_all_dnsnames": options.require_all_dnsnames,
            "header_confirmation": options.header_confirmation,
            "learn_headers": options.learn_headers,
            "header_learning_snapshot": options.header_learning_snapshot.label,
            "netflix_nginx_rule": options.netflix_nginx_rule,
            "edge_priority": options.edge_priority,
            "signals": list(options.signals),
            "confirm_policy": options.confirm_policy,
            "include_ipv6": options.include_ipv6,
            "on_error": options.on_error,
        }

    def _netflix_with_expired(
        self,
        snapshot: Snapshot,
        scan,
        valid_candidates: list[Candidate],
        expired_candidates: list[Candidate],
        rules,
    ) -> frozenset[ASN]:
        """Confirmed Netflix ASes when expired certificates are admitted."""
        merged = valid_candidates + expired_candidates
        if not merged:
            return frozenset()
        if not self.options.header_confirmation:
            return _ases_of(merged)
        confirmed = confirm_candidates(
            "netflix", merged, scan, rules,
            mode="or",
            netflix_nginx_rule=self.options.netflix_nginx_rule,
            edge_priority=self.options.edge_priority,
        )
        return _ases_of([c.candidate for c in confirmed])


def _ases_of(candidates: list[Candidate]) -> frozenset[ASN]:
    ases: set[ASN] = set()
    for candidate in candidates:
        ases |= candidate.ases
    return frozenset(ases)
