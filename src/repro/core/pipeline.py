"""The longitudinal off-net pipeline — §4 end to end, per snapshot.

For every snapshot of a corpus the pipeline:

1. validates certificates (§4.1), keeping an expired-but-structurally-sound
   side channel for the Netflix analysis;
2. learns each hypergiant's TLS fingerprint from its own address space
   (§4.2, with the HG AS sets from the Appendix A.2 reverse org lookup);
3. finds candidate off-nets with the all-dNSNames rule (§4.3);
4. confirms candidates against HTTP(S) header fingerprints (§4.5) learned
   once from the configured learning snapshot (§4.4; the paper uses the
   September 2020 Rapid7 corpus);
5. maps confirmed IPs to ASes (Appendix A.1) and records every variant the
   evaluation section needs (certs-only, or/and header modes, the Netflix
   expired and HTTP-only restorations, the Cloudflare filter).

The pipeline consumes any :class:`~repro.datasets.DataSource` — the live
synthetic :class:`~repro.world.World` or a file-backed
:class:`~repro.datasets.FileDataset` — and factors into a *pure*
per-snapshot phase (:meth:`OffnetPipeline.run_snapshot`) plus an ordered
cross-snapshot merge (:meth:`OffnetPipeline.merge_outcomes`; the §6.2
Netflix "ever a candidate" accumulator is the only cross-snapshot state).
``PipelineOptions(jobs=N)`` maps the pure phase over N worker processes
via :class:`~repro.core.executor.ParallelExecutor`; because the merge is an
explicit ordered reduction, parallel results are bit-identical to serial
ones — a property the test suite asserts.

The per-HG steps are also available as standalone functions
(:mod:`repro.core.tls_fingerprint`, :mod:`repro.core.candidates`, ...); the
pipeline fuses their loops for speed but keeps identical semantics — a
property the test suite asserts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.core.candidates import Candidate
from repro.core.cloudflare import is_cloudflare_customer_cert
from repro.core.confirm import confirm_candidates
from repro.core.executor import SnapshotExecutor, make_executor
from repro.core.footprint import FootprintSnapshot, PipelineResult, SnapshotOutcome
from repro.core.header_fingerprint import learn_header_fingerprints
from repro.core.validation import (
    CertificateValidator,
    ValidatedRecord,
    ValidationStats,
)
from repro.datasets.source import DataSource
from repro.hypergiants.profiles import HEADER_RULES, HYPERGIANTS, HeaderRule
from repro.obs.metrics import MetricsRegistry
from repro.obs.timers import Stopwatch, stage_timer
from repro.scan.records import ScanSnapshot
from repro.net.asn import ASN
from repro.timeline import Snapshot

__all__ = ["PipelineOptions", "OffnetPipeline"]


@dataclass(frozen=True, slots=True)
class PipelineOptions:
    """Pipeline switches (defaults = the paper's methodology; each switch
    exists for an ablation bench)."""

    corpus: str = "rapid7"
    #: §4.1 on/off (off admits expired/self-signed/untrusted certificates).
    validate_certificates: bool = True
    #: §4.3's all-dNSNames-subset rule on/off.
    require_all_dnsnames: bool = True
    #: §4.5 header confirmation on/off (off reports candidates as final).
    header_confirmation: bool = True
    #: Learn Table 4 from the corpus (§4.4) or use the curated rules.
    learn_headers: bool = True
    #: Which snapshot to learn header fingerprints from (paper: Sep. 2020).
    header_learning_snapshot: Snapshot = Snapshot(2020, 10)
    #: The Netflix default-nginx acceptance (§4.4).
    netflix_nginx_rule: bool = True
    #: The §7 edge-CDN conflict priority.
    edge_priority: bool = True
    #: §7 future work: merge the IPv6 research corpus and use dual-stack
    #: IP-to-AS lookups ("our inference approach is IP protocol-agnostic").
    include_ipv6: bool = False
    #: Worker processes for the per-snapshot phase (1 = serial; N > 1 forks
    #: a process pool; 0 = auto, one worker per CPU core; output is
    #: identical for every setting).
    jobs: int = 1

    def __post_init__(self) -> None:
        if self.jobs < 0:
            raise ValueError(
                f"PipelineOptions.jobs must be >= 0, got {self.jobs} "
                "(0 selects one worker per CPU core, 1 runs serially, "
                "N > 1 forks N workers)"
            )


class OffnetPipeline:
    """Runs the §4 methodology over a data source's scan corpuses."""

    def __init__(self, source: DataSource, options: PipelineOptions | None = None) -> None:
        if not isinstance(source, DataSource):
            missing = [
                name
                for name in ("snapshots", "root_store", "topology", "scanner", "scan", "ip2as")
                if not hasattr(source, name)
            ]
            raise TypeError(
                f"{type(source).__name__} does not implement the DataSource "
                f"protocol (missing: {', '.join(missing) or 'structural members'})"
            )
        self.source = source
        self.options = options or PipelineOptions()
        self._validator = CertificateValidator(source.root_store)
        self._keywords = tuple(hg.key for hg in HYPERGIANTS)
        # Appendix A.2: reverse org lookup per HG keyword.
        organizations = source.topology.organizations
        self._hg_ases: dict[str, frozenset[ASN]] = {
            key: organizations.search_by_name(key) for key in self._keywords
        }
        self._all_hg_ases = frozenset(
            asn for ases in self._hg_ases.values() for asn in ases
        )
        # Bounded LRU for stray per-string lookups (header learning etc.).
        # The hot paths never touch it: they map the snapshot store's
        # interned-organization table once per snapshot instead, so the
        # per-process memory for org matching is O(unique orgs per
        # snapshot), not O(every org string ever seen).
        self._org_cache: OrderedDict[str, tuple[str, ...]] = OrderedDict()
        self._header_rules: dict[str, tuple[HeaderRule, ...]] | None = None

    # -- public API ------------------------------------------------------------

    @property
    def world(self) -> DataSource:
        """Backwards-compatible alias for :attr:`source` (the constructor
        predates the :class:`~repro.datasets.DataSource` protocol)."""
        return self.source

    @classmethod
    def for_world(cls, source: DataSource, **option_overrides) -> "OffnetPipeline":
        """Convenience constructor: ``OffnetPipeline(source,
        PipelineOptions(**overrides))``.  Accepts any data source, not just
        a world — the name survives from the pre-``DataSource`` API."""
        options = PipelineOptions(**option_overrides) if option_overrides else None
        return cls(source, options)

    def run(
        self,
        snapshots: tuple[Snapshot, ...] | None = None,
        executor: SnapshotExecutor | None = None,
    ) -> PipelineResult:
        """Run the full pipeline over ``snapshots`` (default: all the corpus
        offers) and return the longitudinal result.

        The per-snapshot phase is mapped by ``executor`` (default: the one
        ``options.jobs`` selects), then merged in snapshot order.
        """
        profile = self.source.scanner(self.options.corpus).profile
        if snapshots is None:
            snapshots = tuple(
                s for s in self.source.snapshots if s >= profile.available_since
            )
        else:
            snapshots = tuple(snapshots)
        if self.options.header_confirmation:
            # Learn the §4.4 rules once in the parent so forked workers
            # inherit them instead of re-learning per process.
            self.header_rules()
        if executor is None:
            executor = make_executor(self.options.jobs)
        outcomes = executor.map_snapshots(self, snapshots)
        try:
            executor_meta = executor.describe()
        except NotImplementedError:  # a user-supplied bare strategy
            executor_meta = {"kind": type(executor).__name__}
        return self.merge_outcomes(snapshots, outcomes, executor_meta=executor_meta)

    def header_rules(self) -> dict[str, tuple[HeaderRule, ...]]:
        """The header fingerprints in force: learned from the learning
        snapshot when possible (§4.4), else the curated Table 4."""
        if self._header_rules is not None:
            return self._header_rules
        rules: dict[str, tuple[HeaderRule, ...]] = dict(HEADER_RULES)
        if self.options.learn_headers:
            learned = self._learn_rules()
            if learned is not None:
                # Keep curated rules for HGs the learning pass missed
                # entirely (no on-net header responses in the corpus).
                for hypergiant, hg_rules in learned.items():
                    if hg_rules:
                        rules[hypergiant] = hg_rules
        self._header_rules = rules
        return rules

    # -- internals ---------------------------------------------------------------

    def _learn_rules(self) -> dict[str, tuple[HeaderRule, ...]] | None:
        options = self.options
        profile = self.source.scanner(options.corpus).profile
        learning_snapshot = options.header_learning_snapshot
        if learning_snapshot < profile.available_since:
            return None
        scan = self.source.scan(options.corpus, learning_snapshot)
        if not scan.http_records:
            return None
        records, _ = self._validated(scan)
        ip2as = self.source.ip2as(learning_snapshot)
        onnet_ips: dict[str, frozenset[int]] = {}
        for keyword in self._keywords:
            hg_ases = self._hg_ases[keyword]
            ips = set()
            for record in records:
                if record.expired_only:
                    continue
                if keyword not in self._hgs_for_org(record.certificate.subject.organization):
                    continue
                if ip2as.lookup(record.ip) & hg_ases:
                    ips.add(record.ip)
            onnet_ips[keyword] = frozenset(ips)
        all_onnet = frozenset(ip for ips in onnet_ips.values() for ip in ips)
        background = frozenset(
            record.ip
            for index, record in enumerate(scan.http_records)
            if index % 3 == 0 and record.ip not in all_onnet
        )
        return learn_header_fingerprints(scan, onnet_ips, background)

    def _validated(
        self, scan, registry: MetricsRegistry | None = None
    ) -> tuple[list[ValidatedRecord], ValidationStats]:
        if not self.options.validate_certificates:
            store = scan.store
            leaves = [chain.end_entity for chain in store.chains]
            records = [
                ValidatedRecord(ip=ip, certificate=leaves[index], chain_index=index)
                for ip, index in store.iter_tls_rows()
            ]
            stats = ValidationStats(
                total=store.tls_row_count,
                valid=len(records),
                expired_only=0,
                rejected=0,
            )
            if registry is not None:
                registry.counter("validation_records_total", verdict="valid").inc(
                    len(records)
                )
            return records, stats
        return self._validator.validate_snapshot(
            scan, allow_expired=True, registry=registry
        )

    #: Upper bound on the stray-lookup LRU (see ``_org_cache`` above).
    _ORG_CACHE_MAX = 4096

    def _hgs_for_org(self, organization: str) -> tuple[str, ...]:
        """Which HG keywords appear in an Organization string (memoised in
        a *bounded* LRU; the per-snapshot hot paths use
        :meth:`_org_table_hgs` over the store's interned table instead)."""
        cache = self._org_cache
        cached = cache.get(organization)
        if cached is not None:
            cache.move_to_end(organization)
            return cached
        lowered = organization.lower()
        cached = tuple(k for k in self._keywords if k in lowered)
        cache[organization] = cached
        if len(cache) > self._ORG_CACHE_MAX:
            cache.popitem(last=False)
        return cached

    def _org_table_hgs(self, store) -> list[tuple[str, ...]]:
        """HG keyword matches for every entry of a store's interned
        Organization table — the whole snapshot's org matching in
        O(unique organisations), no cross-snapshot state."""
        matches = []
        for organization in store.org_table:
            lowered = organization.lower()
            matches.append(tuple(k for k in self._keywords if k in lowered))
        return matches

    def _scan_and_map(self, snapshot: Snapshot):
        """The corpus and IP-to-AS view for one snapshot, optionally merged
        with the IPv6 research corpus (§7 future work)."""
        source = self.source
        scan = source.scan(self.options.corpus, snapshot)
        ip2as = source.ip2as(snapshot)
        if self.options.include_ipv6:
            ipv6_scan = getattr(source, "ipv6_scan", None)
            if ipv6_scan is None:
                raise ValueError(
                    "include_ipv6 requires a world with an IPv6 corpus "
                    "(file-backed datasets are IPv4-only)"
                )
            v6 = ipv6_scan(snapshot)
            merged = ScanSnapshot(
                scanner=f"{scan.scanner}+ipv6", snapshot=snapshot
            )
            # Store-level merge: rows re-intern into one combined table, so
            # chains shared across the v4 and v6 corpuses dedup too.
            merged.store.extend(scan.store)
            merged.store.extend(v6.store)
            scan = merged
            ip2as = source.ip2as_dual(snapshot)
        return scan, ip2as

    # -- the pure per-snapshot phase ---------------------------------------------

    def run_snapshot(self, snapshot: Snapshot) -> SnapshotOutcome:
        """Everything §4 infers from one snapshot, with no cross-snapshot
        state: safe to execute for any subset of snapshots, in any order,
        in any process.  The Netflix restoration inputs ride along for
        :meth:`merge_outcomes`.

        Every stage runs inside a :func:`~repro.obs.timers.stage_timer`
        span and every funnel step books its counts into a *fresh*
        per-snapshot :class:`~repro.obs.metrics.MetricsRegistry` that
        travels home inside the outcome — the unit the merge barrier
        folds deterministically.
        """
        options = self.options
        registry = MetricsRegistry()
        label = snapshot.label

        with stage_timer(registry, "scan"):
            scan, ip2as = self._scan_and_map(snapshot)
        store = scan.store
        store_stats = store.stats()
        registry.counter("funnel_tls_records", snapshot=label).inc(
            store_stats.tls_rows
        )
        registry.counter("funnel_http_records", snapshot=label).inc(
            store_stats.http_rows
        )
        registry.counter("funnel_unique_certificates", snapshot=label).inc(
            store_stats.unique_chains
        )
        # Columnar-store shape metrics: how much §4's "few certificates,
        # many IPs" redundancy the intern tables absorbed this snapshot.
        registry.counter("store_tls_rows", snapshot=label).inc(store_stats.tls_rows)
        registry.counter("store_unique_chains", snapshot=label).inc(
            store_stats.unique_chains
        )
        for table, entries in (
            ("org", store_stats.org_entries),
            ("dns", store_stats.dns_entries),
            ("header", store_stats.header_entries),
        ):
            registry.counter(
                "store_intern_entries", table=table, snapshot=label
            ).inc(entries)

        with stage_timer(registry, "validate"):
            records, stats = self._validated(scan, registry)
        registry.counter("funnel_valid", snapshot=label).inc(stats.valid)
        registry.counter("funnel_expired_only", snapshot=label).inc(
            stats.expired_only
        )
        registry.counter("funnel_rejected", snapshot=label).inc(stats.rejected)

        # Single pass over rows, but all per-unique-certificate work — the
        # org→HG keyword scan and the lowered dNSName tuples — was computed
        # once per intern-table entry, not once per record.
        with stage_timer(registry, "match"):
            org_hgs = self._org_table_hgs(store)
            chain_hgs: list[tuple[str, ...]] = [
                org_hgs[org_index] for org_index in store.chain_org
            ]
            chain_dns: list[tuple[str, ...]] = [
                store.dns_table[dns_index] for dns_index in store.chain_dns
            ]
            registry.counter("match_org_scans", unit="unique_orgs").inc(
                len(org_hgs)
            )
            registry.counter("match_org_scans", unit="rows").inc(len(records))
            onnet_ips: dict[str, set[int]] = {k: set() for k in self._keywords}
            fingerprints: dict[str, set[str]] = {k: set() for k in self._keywords}
            matching: list[tuple[ValidatedRecord, frozenset[ASN], tuple[str, ...]]] = []
            for record in records:
                hgs = chain_hgs[record.chain_index]
                if not hgs:
                    continue
                origins = ip2as.lookup(record.ip)
                if not origins:
                    continue
                matching.append((record, origins, hgs))
                for keyword in hgs:
                    registry.counter(
                        "funnel_org_matched", hg=keyword, snapshot=label
                    ).inc()
                if record.expired_only:
                    continue
                for keyword in hgs:
                    if origins & self._hg_ases[keyword]:
                        onnet_ips[keyword].add(record.ip)
                        fingerprints[keyword].update(chain_dns[record.chain_index])

        # §4.3 candidates per HG (plus the Netflix expired variant).  The
        # all-dNSNames-subset test depends only on (unique certificate,
        # HG), so its result is memoised per (chain_index, keyword) and
        # every further row presenting the same certificate reuses it.
        with stage_timer(registry, "candidates"):
            candidates: dict[str, list[Candidate]] = {k: [] for k in self._keywords}
            netflix_expired: list[Candidate] = []
            subset_ok: dict[tuple[int, str], bool] = {}
            subset_computed = subset_reused = 0
            for record, origins, hgs in matching:
                chain_index = record.chain_index
                for keyword in hgs:
                    names = fingerprints[keyword]
                    if not names:
                        continue
                    if origins & self._hg_ases[keyword]:
                        continue
                    if options.require_all_dnsnames:
                        key = (chain_index, keyword)
                        ok = subset_ok.get(key)
                        if ok is None:
                            ok = all(n in names for n in chain_dns[chain_index])
                            subset_ok[key] = ok
                            subset_computed += 1
                        else:
                            subset_reused += 1
                        if not ok:
                            continue
                    candidate = Candidate(
                        ip=record.ip,
                        certificate=record.certificate,
                        ases=origins,
                        expired_only=record.expired_only,
                    )
                    if record.expired_only:
                        if keyword == "netflix":
                            netflix_expired.append(candidate)
                        continue
                    candidates[keyword].append(candidate)
            registry.counter("match_subset_tests", event="computed").inc(
                subset_computed
            )
            registry.counter("match_subset_tests", event="reused").inc(subset_reused)

        footprint = FootprintSnapshot(
            snapshot=snapshot,
            raw_ip_count=scan.ip_count,
            raw_certificate_count=scan.unique_certificates(),
            validation=stats,
        )
        footprint.onnet_ips = {k: frozenset(v) for k, v in onnet_ips.items() if v}
        for keyword, ips in footprint.onnet_ips.items():
            registry.counter("funnel_onnet_ips", hg=keyword, snapshot=label).inc(
                len(ips)
            )

        with stage_timer(registry, "confirm"):
            rules = self.header_rules() if options.header_confirmation else {}
            for keyword in self._keywords:
                found = candidates[keyword]
                if not found:
                    continue
                footprint.candidate_ips[keyword] = frozenset(c.ip for c in found)
                footprint.candidate_ases[keyword] = _ases_of(found)
                if options.header_confirmation:
                    confirmed = confirm_candidates(
                        keyword, found, scan, rules,
                        mode="or",
                        netflix_nginx_rule=options.netflix_nginx_rule,
                        edge_priority=options.edge_priority,
                        registry=registry,
                    )
                    confirmed_and = confirm_candidates(
                        keyword, found, scan, rules,
                        mode="and",
                        netflix_nginx_rule=options.netflix_nginx_rule,
                        edge_priority=options.edge_priority,
                        registry=registry,
                    )
                    footprint.confirmed_ips[keyword] = frozenset(
                        c.candidate.ip for c in confirmed
                    )
                    footprint.confirmed_ases[keyword] = _ases_of(
                        [c.candidate for c in confirmed]
                    )
                    footprint.confirmed_and_ases[keyword] = _ases_of(
                        [c.candidate for c in confirmed_and]
                    )
                else:
                    footprint.confirmed_ips[keyword] = footprint.candidate_ips[keyword]
                    footprint.confirmed_ases[keyword] = footprint.candidate_ases[keyword]
                    footprint.confirmed_and_ases[keyword] = footprint.candidate_ases[keyword]
                registry.counter(
                    "funnel_candidates", hg=keyword, snapshot=label
                ).inc(len(footprint.candidate_ips[keyword]))
                registry.counter(
                    "funnel_confirmed", hg=keyword, snapshot=label
                ).inc(len(footprint.confirmed_ips[keyword]))

        # §7: the Cloudflare customer-certificate filter.
        cloudflare_candidates = candidates.get("cloudflare", [])
        surviving = [
            c for c in cloudflare_candidates
            if not is_cloudflare_customer_cert(c.certificate)
        ]
        footprint.cloudflare_filtered_ases = _ases_of(surviving)

        # §6.2: the per-snapshot half of the Netflix restorations.  The
        # non-TLS restoration needs the cross-snapshot "ever a candidate"
        # set, so this phase only gathers its inputs: which IPs presented
        # Netflix certificates now, and which port-80-only IPs could be
        # restored (with their origin ASes resolved while the snapshot's
        # ip2as view is at hand).
        with stage_timer(registry, "netflix"):
            footprint.netflix_with_expired_ases = self._netflix_with_expired(
                snapshot, scan, candidates.get("netflix", []), netflix_expired, rules
            )
            netflix_seen = frozenset(
                footprint.candidate_ips.get("netflix", frozenset())
                | {c.ip for c in netflix_expired}
            )
            current_tls_ips = scan.unique_ips()
            restorable: dict[int, frozenset[ASN]] = {}
            for record in scan.http_records:
                if record.port != 80:
                    continue
                ip = record.ip
                if ip in current_tls_ips or ip in restorable:
                    continue
                origins = ip2as.lookup(ip)
                if origins:
                    restorable[ip] = origins

        return SnapshotOutcome(
            footprint=footprint,
            netflix_seen=netflix_seen,
            restorable=restorable,
            metrics=registry,
        )

    # -- the ordered cross-snapshot merge ------------------------------------------

    def merge_outcomes(
        self,
        snapshots: tuple[Snapshot, ...],
        outcomes: list[SnapshotOutcome],
        executor_meta: dict | None = None,
    ) -> PipelineResult:
        """Reduce per-snapshot outcomes, in snapshot order, into the
        longitudinal result.  The only cross-snapshot state is the §6.2
        Netflix "ever a candidate" accumulator; folding it here (rather
        than inside the per-snapshot phase) is what makes the phase pure
        and the parallel run bit-identical to the serial one.

        The same barrier folds the per-snapshot metrics registries:
        counters and histograms merge commutatively, and the snapshot
        ordering here is the one ordering both executors can honour, so
        a ``jobs=N`` run's merged registry counts exactly what the
        ``jobs=1`` run's does.
        """
        by_snapshot: dict[Snapshot, FootprintSnapshot] = {}
        metrics = MetricsRegistry()
        netflix_ever_candidates: set[int] = set()
        watch = Stopwatch(metrics)
        for snapshot, outcome in zip(snapshots, outcomes, strict=True):
            footprint = outcome.footprint
            if netflix_ever_candidates:
                restored: set[ASN] = set()
                for ip, ases in outcome.restorable.items():
                    if ip in netflix_ever_candidates:
                        restored.update(ases)
                footprint.netflix_restored_ases = frozenset(restored)
            netflix_ever_candidates.update(outcome.netflix_seen)
            by_snapshot[snapshot] = footprint
            metrics.merge(outcome.metrics)
        watch.lap("merge")
        return PipelineResult(
            corpus=self.options.corpus,
            snapshots=tuple(snapshots),
            by_snapshot=by_snapshot,
            metrics=metrics,
            run_meta={
                "options": self._options_meta(),
                "executor": dict(executor_meta or {}),
            },
        )

    def _options_meta(self) -> dict:
        """The methodology switches for the run report's ``options``
        section.  ``jobs`` is deliberately absent: it is an execution
        detail (reported under ``executor``), and the deterministic view
        must compare equal across ``jobs`` settings."""
        options = self.options
        return {
            "corpus": options.corpus,
            "validate_certificates": options.validate_certificates,
            "require_all_dnsnames": options.require_all_dnsnames,
            "header_confirmation": options.header_confirmation,
            "learn_headers": options.learn_headers,
            "header_learning_snapshot": options.header_learning_snapshot.label,
            "netflix_nginx_rule": options.netflix_nginx_rule,
            "edge_priority": options.edge_priority,
            "include_ipv6": options.include_ipv6,
        }

    def _netflix_with_expired(
        self,
        snapshot: Snapshot,
        scan,
        valid_candidates: list[Candidate],
        expired_candidates: list[Candidate],
        rules,
    ) -> frozenset[ASN]:
        """Confirmed Netflix ASes when expired certificates are admitted."""
        merged = valid_candidates + expired_candidates
        if not merged:
            return frozenset()
        if not self.options.header_confirmation:
            return _ases_of(merged)
        confirmed = confirm_candidates(
            "netflix", merged, scan, rules,
            mode="or",
            netflix_nginx_rule=self.options.netflix_nginx_rule,
            edge_priority=self.options.edge_priority,
        )
        return _ases_of([c.candidate for c in confirmed])


def _ases_of(candidates: list[Candidate]) -> frozenset[ASN]:
    ases: set[ASN] = set()
    for candidate in candidates:
        ases |= candidate.ases
    return frozenset(ases)
