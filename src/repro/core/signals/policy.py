"""Combine policies: how signal verdicts fold into a confirmation.

A policy sees the full verdict tuple for one candidate (one verdict per
configured signal, in ``--signals`` order) and decides confirmed / not
confirmed.  Three families exist:

* ``paper-default`` — the header signal alone decides, exactly as the
  pre-framework §4.5 step did; other configured signals still run and
  book their verdicts (observability), but cannot change the outcome.
  This is the default and keeps the funnel bit-identical to the
  original implementation.
* ``require-k`` (``require-1``, ``require-2``, ...) — confirmed when at
  least *k* signals vote confirm.  Rejections do **not** veto: the
  framework exists precisely because an adversary can poison one
  channel (spoofed headers make the header signal reject), so a strong
  independent confirmation must be able to outvote a poisoned channel.
* ``priority`` — the first non-abstaining signal, in ``--signals``
  order, decides.  Puts a cheap-but-spoofable channel behind a
  harder-to-fake one (``--signals tls-stack,header``).
"""

from __future__ import annotations

from repro.core.signals.base import CONFIRM, REJECT, SignalVerdict

__all__ = [
    "CombinePolicy",
    "PaperDefaultPolicy",
    "PriorityPolicy",
    "RequireKPolicy",
    "parse_policy",
    "policy_names",
]


class CombinePolicy:
    """Base class: a named fold from verdicts to confirmed/not."""

    #: The spec string that parses back to this policy.
    name: str = ""

    def decide(self, verdicts: tuple[SignalVerdict, ...]) -> bool:
        """Fold one candidate's verdicts into a confirmation decision."""
        raise NotImplementedError


class PaperDefaultPolicy(CombinePolicy):
    """The header signal decides; everything else is observability."""

    name = "paper-default"

    def decide(self, verdicts: tuple[SignalVerdict, ...]) -> bool:
        """Confirmed iff the ``header`` verdict is confirm."""
        for verdict in verdicts:
            if verdict.signal == "header":
                return verdict.verdict == CONFIRM
        return False


class RequireKPolicy(CombinePolicy):
    """Confirmed when at least ``k`` signals vote confirm."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError(f"require-k needs k >= 1, got {k}")
        self.k = k
        self.name = f"require-{k}"

    def decide(self, verdicts: tuple[SignalVerdict, ...]) -> bool:
        """Count confirm votes against the threshold."""
        confirms = sum(1 for v in verdicts if v.verdict == CONFIRM)
        return confirms >= self.k


class PriorityPolicy(CombinePolicy):
    """First non-abstaining signal (in configured order) decides."""

    name = "priority"

    def decide(self, verdicts: tuple[SignalVerdict, ...]) -> bool:
        """Walk the verdicts in order; abstentions pass the baton."""
        for verdict in verdicts:
            if verdict.verdict == CONFIRM:
                return True
            if verdict.verdict == REJECT:
                return False
        return False


def policy_names() -> tuple[str, ...]:
    """The accepted ``--confirm-policy`` spellings (``require-<k>`` for
    any positive integer ``k``)."""
    return ("paper-default", "require-<k>", "priority")


def parse_policy(spec: str) -> CombinePolicy:
    """A :class:`CombinePolicy` from its spec string.

    Accepts ``paper-default``, ``priority``, and ``require-<k>`` for a
    positive integer ``k`` (e.g. ``require-2``).
    """
    if spec == "paper-default":
        return PaperDefaultPolicy()
    if spec == "priority":
        return PriorityPolicy()
    if spec.startswith("require-"):
        suffix = spec[len("require-") :]
        if suffix.isdigit() and int(suffix) >= 1:
            return RequireKPolicy(int(suffix))
    raise ValueError(
        f"unknown confirm policy {spec!r}; expected one of "
        f"{', '.join(policy_names())}"
    )
