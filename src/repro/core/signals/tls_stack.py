"""The TLS-stack signal: per-HG handshake features as confirmation.

Hypergiants run distinctive, vertically-integrated TLS stacks — GFE,
proxygen, CloudFront, Ghost — whose handshake surface (offered ALPN
set, minimum negotiated protocol version, extension/cipher ordering
class) is hard for an off-net operator to fake *and* hard for a
header-rewriting middlebox to perturb, because it is produced below the
HTTP layer.  The world model emits each hypergiant's expected triple
from :data:`repro.hypergiants.profiles.STACK_PROFILES`, the scanners
capture the observed triple per TLS row, and the corpus formats persist
it (an optional ``stack`` field on JSONL ``tls`` records; the
``stack_table``/``tls_stack`` blocks of ``.rcc`` files).

Verdicts:

* **abstain** when the hypergiant has no distinctive stack profile
  (many HGs run stock nginx/Apache farms — a stock class must never
  confirm), or when the corpus carries no stack observation for the IP
  (pre-stack corpora, certificate-only scans);
* **confirm** when the observed triple matches the profile under
  :func:`repro.scan.handshake.stack_matches` (same ordering class, an
  offered-ALPN subset — a QUIC-only endpoint still offers ``h3`` — and
  at least the profiled version floor);
* **reject** when a stack was observed and does not match: a different
  implementation answered the handshake.
"""

from __future__ import annotations

from repro.core.candidates import Candidate
from repro.core.signals.base import (
    ABSTAIN,
    CONFIRM,
    REJECT,
    SignalContext,
    SignalVerdict,
)
from repro.hypergiants.profiles import stack_profile
from repro.scan.handshake import UNKNOWN_STACK, stack_matches

__all__ = ["TlsStackSignal"]


class TlsStackSignal:
    """Handshake-feature confirmation (registry name ``tls-stack``)."""

    name = "tls-stack"

    def evaluate(
        self, candidate: Candidate, context: SignalContext
    ) -> SignalVerdict:
        """Compare the candidate IP's observed stack to the HG profile."""
        expected = stack_profile(context.hypergiant)
        if expected == UNKNOWN_STACK:
            return SignalVerdict(
                self.name,
                ABSTAIN,
                (("reason", "no-stack-profile"),),
            )
        observed = context.scan.stack_for(candidate.ip)
        if observed == UNKNOWN_STACK:
            return SignalVerdict(
                self.name,
                ABSTAIN,
                (("reason", "no-observation"),),
            )
        evidence = (
            ("observed_class", observed[2]),
            ("observed_alpn", observed[0]),
            ("observed_floor", observed[1]),
            ("expected_class", expected[2]),
        )
        if stack_matches(observed, expected):
            return SignalVerdict(self.name, CONFIRM, evidence)
        return SignalVerdict(self.name, REJECT, evidence)
