"""The header signal: §4.5's HTTP(S) fingerprint match, ported intact.

This is the original confirmation logic — Table 4 rule matching with
the Netflix default-nginx acceptance (§4.4) and the §7 edge-CDN
conflict priority — re-expressed as a :class:`ConfirmationSignal`.
Under the ``paper-default`` combine policy its verdicts reproduce the
pre-framework confirmations bit for bit.

What the port *adds* is per-port evidence: the verdict names which rule
matched on each of HTTPS (443) and HTTP (80) separately
(``https_rule`` / ``http_rule``), so a ``both`` match that used
different rules on the two ports keeps both identities instead of
collapsing them into one ``matched_on`` label.
"""

from __future__ import annotations

from repro.core.candidates import Candidate
from repro.core.signals.base import (
    ABSTAIN,
    CONFIRM,
    REJECT,
    SignalContext,
    SignalVerdict,
)
from repro.hypergiants.profiles import STANDARD_HEADERS, HeaderRule

__all__ = ["EDGE_CDNS", "HeaderSignal", "is_default_nginx", "rule_label"]

#: CDNs that operate edges on behalf of content owners (§7's conflict list).
EDGE_CDNS: tuple[str, ...] = (
    "akamai",
    "cloudflare",
    "fastly",
    "verizon",
    "cdnetworks",
    "limelight",
)


def is_default_nginx(headers: dict[str, str]) -> bool:
    """A stock nginx response: ``Server: nginx`` and nothing non-standard."""
    server = None
    for name, value in headers.items():
        lowered = name.lower()
        if lowered == "server":
            server = value
        elif lowered not in STANDARD_HEADERS:
            return False
    return server is not None and server.lower().startswith("nginx")


def rule_label(rule: HeaderRule) -> str:
    """A stable, human-auditable identity for one Table 4 rule."""
    if rule.value is None:
        return rule.name
    return f"{rule.name}={rule.value}"


def _matches(rules: tuple[HeaderRule, ...], headers: dict[str, str]) -> bool:
    return any(rule.matches_any(headers) for rule in rules)


class HeaderSignal:
    """§4.5 header confirmation as a signal (registry name ``header``)."""

    name = "header"

    def evaluate(
        self, candidate: Candidate, context: SignalContext
    ) -> SignalVerdict:
        """Judge the candidate's port-443 and port-80 header responses.

        Confirms under the context's ``mode`` (``or``/``and``, Figure
        4's variants); rejects when headers were captured but did not
        match; abstains only when *neither* port produced headers at all
        (a certificate-only corpus has no header channel to judge by).
        """
        scan = context.scan
        https_match, https_label = self._port_match(
            context, _headers_at(scan, candidate.ip, 443)
        )
        http_match, http_label = self._port_match(
            context, _headers_at(scan, candidate.ip, 80)
        )
        https_ok = bool(https_match)
        http_ok = bool(http_match)
        if context.mode == "and":
            ok = https_ok and http_ok
        else:
            ok = https_ok or http_ok
        evidence = (("https_rule", https_label), ("http_rule", http_label))
        if ok:
            matched_on = (
                "both" if (https_ok and http_ok) else ("https" if https_ok else "http")
            )
            return SignalVerdict(
                self.name, CONFIRM, evidence + (("matched_on", matched_on),)
            )
        if https_match is None and http_match is None:
            return SignalVerdict(self.name, ABSTAIN, evidence)
        return SignalVerdict(self.name, REJECT, evidence)

    @staticmethod
    def _port_match(
        context: SignalContext, headers: dict[str, str] | None
    ) -> tuple[bool | None, str]:
        """One port's verdict: ``(matched, rule label)``.

        ``matched`` is ``None`` when the corpus captured no headers for
        the port (distinct from a non-match: the channel was absent, not
        contradictory).  The boolean outcomes replicate the original
        ``confirm._port_match`` exactly; the label is the addition.
        """
        if headers is None:
            return None, "no-headers"
        hypergiant = context.hypergiant
        matched_rule: str | None = None
        for rule in context.rules.get(hypergiant, ()):
            if rule.matches_any(headers):
                matched_rule = rule_label(rule)
                break
        if (
            matched_rule is None
            and context.netflix_nginx_rule
            and hypergiant == "netflix"
            and is_default_nginx(headers)
        ):
            matched_rule = "default-nginx"
        if matched_rule is None:
            return False, "no-match"
        if context.edge_priority and hypergiant not in EDGE_CDNS:
            for edge in EDGE_CDNS:
                if _matches(context.rules.get(edge, ()), headers):
                    # The edge CDN operates this box, not the HG.
                    return False, f"edge-conflict:{edge}"
        return True, matched_rule


def _headers_at(scan, ip: int, port: int) -> dict[str, str] | None:
    record = scan.http_for(ip, port)
    return None if record is None else record.header_dict()
