"""§4.5 confirmation as a pluggable multi-signal framework.

The original confirmation step asked one question — "do this
candidate's response headers match the hypergiant's fingerprint?" — and
hard-wired its two paper refinements (the Netflix default-nginx
acceptance, the §7 edge-CDN conflict priority) into the matcher.  That
single channel is also the easiest one for an off-net operator to
perturb: spoofed or stripped ``Server`` banners, middlebox header
rewrites and QUIC-only endpoints all defeat a header-only confirmer
without touching what the server *is*.

This package generalises the step into independent **confirmation
signals** combined by an explicit **policy**:

* :class:`~repro.core.signals.base.ConfirmationSignal` — the protocol:
  one candidate in, one :class:`~repro.core.signals.base.SignalVerdict`
  out (``confirm`` / ``reject`` / ``abstain`` plus structured evidence);
* :mod:`~repro.core.signals.registry` — named signal constructors
  (``header``, ``tls-stack``, ``cert-names``) the CLI's ``--signals``
  flag resolves against;
* :class:`~repro.core.signals.policy.CombinePolicy` — how verdicts fold
  into a confirmation: ``paper-default`` (the header signal decides,
  bit-identical to the pre-framework behaviour), ``require-k`` (at
  least *k* signals must confirm) and ``priority`` (first non-abstain
  verdict wins, in ``--signals`` order);
* :func:`~repro.core.signals.engine.evaluate_candidates` — the engine
  the confirm stage runs: evaluates every signal per candidate, folds
  the verdicts under the policy, and books both the historical funnel
  counters and the per-signal observability counters.

The framework exists for the adversarial bench
(``benchmarks/bench_hide_and_seek.py``): evasion strategies that fool
the header-only baseline must still be caught by a multi-signal
configuration, with zero false confirmations against world ground
truth.
"""

from repro.core.signals.base import (
    ABSTAIN,
    CONFIRM,
    REJECT,
    ConfirmationSignal,
    SignalContext,
    SignalVerdict,
)
from repro.core.signals.cert_names import CertNamesSignal
from repro.core.signals.engine import SignalDecision, evaluate_candidates
from repro.core.signals.header import EDGE_CDNS, HeaderSignal, is_default_nginx
from repro.core.signals.policy import (
    CombinePolicy,
    PaperDefaultPolicy,
    PriorityPolicy,
    RequireKPolicy,
    parse_policy,
    policy_names,
)
from repro.core.signals.registry import (
    build_signal,
    build_signals,
    register_signal,
    signal_names,
)
from repro.core.signals.tls_stack import TlsStackSignal

__all__ = [
    "ABSTAIN",
    "CONFIRM",
    "EDGE_CDNS",
    "REJECT",
    "CertNamesSignal",
    "CombinePolicy",
    "ConfirmationSignal",
    "HeaderSignal",
    "PaperDefaultPolicy",
    "PriorityPolicy",
    "RequireKPolicy",
    "SignalContext",
    "SignalDecision",
    "SignalVerdict",
    "TlsStackSignal",
    "build_signal",
    "build_signals",
    "evaluate_candidates",
    "is_default_nginx",
    "parse_policy",
    "policy_names",
    "register_signal",
    "signal_names",
]
