"""The confirm-stage engine: evaluate signals, fold verdicts, book counters.

One :func:`evaluate_candidates` call judges every candidate of one
(hypergiant, snapshot, mode) cell: each configured signal produces a
:class:`~repro.core.signals.base.SignalVerdict`, the combine policy
folds them, and the historical funnel counters
(``confirm_checked_total``, ``confirm_passed_total``) are booked with
the same names, labels and values the pre-framework implementation
booked — that is what keeps the default configuration's reports
bit-identical.

On top of those, the engine books the signal-level observability
counters the run report's ``signals`` section folds at the merge
barrier:

* ``signal_verdicts_total{signal, verdict, hg}`` — one per signal per
  candidate;
* ``signal_disagreements_total{hg}`` — candidates where at least one
  signal confirmed while another rejected (the interesting rows: either
  an evasion caught by a second channel, or a signal misfiring).

Both are booked only when ``book_signals`` is set: the confirm stage
runs the engine twice (Figure 4's ``or`` and ``and`` variants) and only
the primary ``or`` pass books signal counters, so each candidate is
counted once.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import Candidate
from repro.core.signals.base import (
    CONFIRM,
    REJECT,
    ConfirmationSignal,
    SignalContext,
    SignalVerdict,
)
from repro.core.signals.policy import CombinePolicy
from repro.hypergiants.profiles import HeaderRule
from repro.obs.metrics import MetricsRegistry
from repro.scan.records import ScanSnapshot

__all__ = ["SignalDecision", "evaluate_candidates"]


@dataclass(frozen=True, slots=True)
class SignalDecision:
    """One candidate's combined confirmation outcome."""

    candidate: Candidate
    confirmed: bool
    #: Which channel produced the confirmation: the header signal's
    #: port label (``both``/``https``/``http``) when it confirmed, else
    #: the name of the first confirming signal; ``""`` when rejected.
    matched_on: str
    #: Every signal's verdict, in configured order, with evidence.
    verdicts: tuple[SignalVerdict, ...]


def evaluate_candidates(
    hypergiant: str,
    candidates: list[Candidate],
    scan: ScanSnapshot,
    rules: dict[str, tuple[HeaderRule, ...]],
    signals: tuple[ConfirmationSignal, ...],
    policy: CombinePolicy,
    mode: str = "or",
    netflix_nginx_rule: bool = True,
    edge_priority: bool = True,
    registry: MetricsRegistry | None = None,
    book_signals: bool = True,
) -> list[SignalDecision]:
    """Judge ``candidates`` with every signal and fold under ``policy``.

    Returns one :class:`SignalDecision` per candidate (confirmed or
    not), so callers can audit rejections; the classic confirmed-only
    view is ``[d for d in decisions if d.confirmed]``.
    """
    if mode not in ("or", "and"):
        raise ValueError(f"mode must be 'or' or 'and', not {mode!r}")
    context = SignalContext(
        hypergiant=hypergiant,
        scan=scan,
        rules=rules,
        mode=mode,
        netflix_nginx_rule=netflix_nginx_rule,
        edge_priority=edge_priority,
    )
    if registry is not None:
        registry.counter("confirm_checked_total", hg=hypergiant, mode=mode).inc(
            len(candidates)
        )
    decisions: list[SignalDecision] = []
    for candidate in candidates:
        verdicts = tuple(signal.evaluate(candidate, context) for signal in signals)
        confirmed = policy.decide(verdicts)
        matched_on = _matched_on(verdicts) if confirmed else ""
        if registry is not None:
            if book_signals:
                for verdict in verdicts:
                    registry.counter(
                        "signal_verdicts_total",
                        signal=verdict.signal,
                        verdict=verdict.verdict,
                        hg=hypergiant,
                    ).inc()
                outcomes = {v.verdict for v in verdicts}
                if CONFIRM in outcomes and REJECT in outcomes:
                    registry.counter(
                        "signal_disagreements_total", hg=hypergiant
                    ).inc()
            if confirmed:
                registry.counter(
                    "confirm_passed_total",
                    hg=hypergiant,
                    mode=mode,
                    matched_on=matched_on,
                ).inc()
        decisions.append(
            SignalDecision(
                candidate=candidate,
                confirmed=confirmed,
                matched_on=matched_on,
                verdicts=verdicts,
            )
        )
    return decisions


def _matched_on(verdicts: tuple[SignalVerdict, ...]) -> str:
    """The confirmation channel label for ``confirm_passed_total``.

    A confirming header verdict keeps its historical port label
    (``both``/``https``/``http``), preserving counter parity with the
    pre-framework implementation; otherwise the first confirming
    signal's name identifies the rescuing channel.
    """
    for verdict in verdicts:
        if verdict.signal == "header" and verdict.verdict == CONFIRM:
            return verdict.evidence_dict().get("matched_on", "header")
    for verdict in verdicts:
        if verdict.verdict == CONFIRM:
            return verdict.signal
    return "policy"
