"""The confirmation-signal protocol: verdicts, evidence, context.

A signal inspects one §4.3 candidate against one snapshot's corpus and
returns exactly one of three verdicts:

* ``confirm`` — the channel affirmatively supports the hypergiant
  operating this server;
* ``reject`` — the channel was observable and contradicts it;
* ``abstain`` — the channel has nothing to say (no observation, no
  profile for this hypergiant, a corpus predating the feature).

The three-way split is what makes combination policies meaningful: an
abstention must never count against a candidate (a certificate-only
corpus abstains on every header question), while a reject is real
evidence a different operator answered.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from repro.core.candidates import Candidate
from repro.hypergiants.profiles import HeaderRule
from repro.scan.records import ScanSnapshot

__all__ = [
    "ABSTAIN",
    "CONFIRM",
    "REJECT",
    "ConfirmationSignal",
    "SignalContext",
    "SignalVerdict",
]

#: The signal affirmatively supports the candidate.
CONFIRM = "confirm"
#: The signal was observable and contradicts the candidate.
REJECT = "reject"
#: The signal has no observation to judge the candidate by.
ABSTAIN = "abstain"


@dataclass(frozen=True, slots=True)
class SignalVerdict:
    """One signal's answer for one candidate.

    ``evidence`` is a tuple of ``(key, value)`` string pairs — hashable,
    deterministic, and precise enough to audit a verdict after the fact.
    The header signal, for example, carries *per-port* rule evidence
    (``https_rule`` / ``http_rule``), so a ``both`` match that used
    different rules on the two ports is no longer conflated into one
    undifferentiated label.
    """

    signal: str
    verdict: str  # one of CONFIRM / REJECT / ABSTAIN
    evidence: tuple[tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if self.verdict not in (CONFIRM, REJECT, ABSTAIN):
            raise ValueError(
                f"verdict must be {CONFIRM!r}, {REJECT!r} or {ABSTAIN!r}, "
                f"not {self.verdict!r}"
            )

    def evidence_dict(self) -> dict[str, str]:
        """The evidence pairs as a dict (keys are unique per signal)."""
        return dict(self.evidence)


@dataclass(slots=True)
class SignalContext:
    """Everything signals may read while judging one hypergiant's
    candidates against one snapshot.

    One context is built per (hypergiant, snapshot, mode) evaluation;
    signals must treat it as read-only shared state.
    """

    #: The candidate hypergiant's keyword (e.g. ``"google"``).
    hypergiant: str
    #: The snapshot's corpus (headers, TLS stacks, certificate rows).
    scan: ScanSnapshot
    #: The §4.4 header fingerprints in force, for every hypergiant.
    rules: dict[str, tuple[HeaderRule, ...]] = field(default_factory=dict)
    #: Figure 4's header-corpus agreement variant: ``"or"`` or ``"and"``.
    mode: str = "or"
    #: The Netflix default-nginx acceptance (§4.4).
    netflix_nginx_rule: bool = True
    #: The §7 edge-CDN conflict priority.
    edge_priority: bool = True


@runtime_checkable
class ConfirmationSignal(Protocol):
    """The protocol every registered confirmation signal implements."""

    #: The registry name (``header``, ``tls-stack``, ...); also the
    #: ``signal`` label on the observability counters.
    name: str

    def evaluate(
        self, candidate: Candidate, context: SignalContext
    ) -> SignalVerdict:
        """Judge one candidate under ``context``."""
        ...
