"""The cert-dNSName corroboration signal.

Re-applies the §4.2 identity tests — a case-insensitive
``Subject.Organization`` keyword match
(:func:`repro.core.tls_fingerprint.organization_matches`) and the
presence of authenticated dNSNames — to the candidate's own end-entity
certificate.

This signal is **corroboration, not discrimination**: every §4.3
candidate already passed a certificate screen, and a hypergiant's
*service* presences (§6.1: partner edges holding genuine HG
certificates without HG hardware) present exactly the same certificate
surface as real off-nets.  It therefore never rejects — a certificate
that fails the re-check merely abstains — and its confirm vote is only
meaningful under a ``require-k`` policy with ``k >= 2``, where it backs
up an independent operational signal (headers, TLS stack) rather than
deciding alone.  Under ``require-1`` it would simply restate candidacy
and confirm service edges; configurations that include it alone are
doing certificate-only inference (Figure 4's "certs only" variant) by
another name.
"""

from __future__ import annotations

from repro.core.candidates import Candidate
from repro.core.signals.base import ABSTAIN, CONFIRM, SignalContext, SignalVerdict
from repro.core.tls_fingerprint import organization_matches

__all__ = ["CertNamesSignal"]


class CertNamesSignal:
    """Certificate-identity corroboration (registry name ``cert-names``)."""

    name = "cert-names"

    def evaluate(
        self, candidate: Candidate, context: SignalContext
    ) -> SignalVerdict:
        """Corroborate (or abstain); this signal never rejects."""
        certificate = candidate.certificate
        if candidate.expired_only:
            return SignalVerdict(
                self.name, ABSTAIN, (("reason", "expired-only"),)
            )
        if not organization_matches(
            certificate.subject.organization, context.hypergiant
        ):
            # The candidate matched through a looser org scan or a
            # shared certificate; nothing here to corroborate with.
            return SignalVerdict(
                self.name, ABSTAIN, (("reason", "org-mismatch"),)
            )
        names = certificate.dns_names
        if not names:
            return SignalVerdict(self.name, ABSTAIN, (("reason", "no-dnsnames"),))
        return SignalVerdict(
            self.name,
            CONFIRM,
            (
                ("organization", certificate.subject.organization),
                ("dnsname_count", str(len(names))),
            ),
        )
