"""The confirmation-signal registry.

Signals are registered under stable names the CLI's ``--signals`` flag
and :class:`~repro.core.pipeline.PipelineOptions.signals` resolve
against.  Registration maps a name to a zero-argument factory (signals
are stateless; a fresh instance per build keeps them trivially
fork-safe), mirroring the corpus codec registry in
:mod:`repro.datasets.formats`.
"""

from __future__ import annotations

from typing import Callable

from repro.core.signals.base import ConfirmationSignal
from repro.core.signals.cert_names import CertNamesSignal
from repro.core.signals.header import HeaderSignal
from repro.core.signals.tls_stack import TlsStackSignal

__all__ = ["build_signal", "build_signals", "register_signal", "signal_names"]

_FACTORIES: dict[str, Callable[[], ConfirmationSignal]] = {}


def register_signal(
    name: str, factory: Callable[[], ConfirmationSignal]
) -> None:
    """Register a signal factory under ``name`` (last registration wins,
    so tests can shadow a built-in with an instrumented double)."""
    if not name:
        raise ValueError("signal name must be non-empty")
    _FACTORIES[name] = factory


def signal_names() -> tuple[str, ...]:
    """Every registered signal name, sorted — what ``--signals`` offers."""
    return tuple(sorted(_FACTORIES))


def build_signal(name: str) -> ConfirmationSignal:
    """A fresh instance of the signal registered under ``name``."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown confirmation signal {name!r}; "
            f"registered: {', '.join(signal_names())}"
        ) from None
    return factory()


def build_signals(names: tuple[str, ...]) -> tuple[ConfirmationSignal, ...]:
    """Instances for ``names``, in the given (priority) order."""
    return tuple(build_signal(name) for name in names)


register_signal("header", HeaderSignal)
register_signal("tls-stack", TlsStackSignal)
register_signal("cert-names", CertNamesSignal)
