"""§4.3 — identifying candidate off-nets with the dNSName-subset rule.

A record outside the hypergiant's ASes is a candidate off-net when

* its Organization contains the HG keyword (case-insensitive), and
* **all** of its dNSNames appear in the fingerprint's on-net name set.

Requiring *all* names filters the two §3 confusions: certificate-provider
HGs (a Cloudflare-issued customer certificate carries the customer's own
domain — unless Cloudflare also serves it on-net, see §7) and certificates
a HG shares with another organisation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.ip2as import IPToASMap
from repro.core.tls_fingerprint import TLSFingerprint, organization_matches
from repro.core.validation import ValidatedRecord
from repro.net.asn import ASN
from repro.x509.certificate import Certificate

__all__ = ["Candidate", "find_candidates"]


@dataclass(frozen=True, slots=True)
class Candidate:
    """One candidate off-net IP for one hypergiant."""

    ip: int
    certificate: Certificate
    #: Origin AS(es) of the IP (all of them for MOAS prefixes).
    ases: frozenset[ASN]
    #: The record's chain was expired (kept only in allow-expired passes).
    expired_only: bool = False


def find_candidates(
    fingerprint: TLSFingerprint,
    records: list[ValidatedRecord],
    hg_ases: frozenset[ASN],
    ip2as: IPToASMap,
    require_all_dnsnames: bool = True,
) -> list[Candidate]:
    """Apply the §4.3 rule to one snapshot's validated records.

    ``require_all_dnsnames=False`` ablates the subset rule (the organisation
    match alone), quantifying how many false positives the rule removes.
    """
    if fingerprint.is_empty:
        return []
    keyword = fingerprint.hypergiant
    names = fingerprint.dns_names
    candidates: list[Candidate] = []
    for record in records:
        certificate = record.certificate
        if not organization_matches(certificate.subject.organization, keyword):
            continue
        origins = ip2as.lookup(record.ip)
        if not origins:
            continue  # unmapped address space: cannot attribute an AS
        if origins & hg_ases:
            continue  # on-net, not a candidate off-net
        if require_all_dnsnames and not all(
            name.lower() in names for name in certificate.dns_names
        ):
            continue
        candidates.append(
            Candidate(
                ip=record.ip,
                certificate=certificate,
                ases=origins,
                expired_only=record.expired_only,
            )
        )
    return candidates
