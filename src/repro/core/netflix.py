"""§6.2 — the Netflix envelope.

Netflix's curve needed manual investigation: from 2017-04 a large share of
its off-nets answered with an *expired* certificate, and from 2017-10 about
a quarter stopped answering HTTPS entirely, serving plain HTTP instead.
The paper restores both populations — "for the rest of the paper, we will
use the envelope of these two lines" — and this module assembles the three
Figure 3 series from a pipeline result.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.footprint import FootprintQueries
from repro.timeline import Snapshot

__all__ = ["NetflixEnvelope", "restore_netflix"]


@dataclass(frozen=True, slots=True)
class NetflixEnvelope:
    """The three Netflix series of Figure 3 plus their envelope."""

    snapshots: tuple[Snapshot, ...]
    initial: tuple[int, ...]
    with_expired: tuple[int, ...]
    with_expired_nontls: tuple[int, ...]

    def envelope(self) -> tuple[int, ...]:
        """Pointwise maximum — the footprint used for the rest of the paper."""
        return tuple(
            max(a, b, c)
            for a, b, c in zip(self.initial, self.with_expired, self.with_expired_nontls)
        )

    def dip_depth(self) -> float:
        """How far the uncorrected series falls below the envelope at its
        worst, as a fraction (0 = never dips; 0.6 = drops to 40%)."""
        worst = 0.0
        for raw, restored in zip(self.initial, self.envelope()):
            if restored > 0:
                worst = max(worst, 1.0 - raw / restored)
        return worst


def restore_netflix(result: FootprintQueries) -> NetflixEnvelope:
    """Assemble the three Netflix series from any footprint query surface
    (a batch result or a :class:`~repro.core.footprint_index.FootprintIndex`)."""
    snapshots = result.snapshots
    initial = tuple(result.as_count("netflix", s, "confirmed") for s in snapshots)
    with_expired = tuple(result.as_count("netflix", s, "with_expired") for s in snapshots)
    with_nontls = tuple(
        result.as_count("netflix", s, "with_expired_nontls") for s in snapshots
    )
    return NetflixEnvelope(
        snapshots=snapshots,
        initial=initial,
        with_expired=with_expired,
        with_expired_nontls=with_nontls,
    )
