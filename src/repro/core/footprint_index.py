"""The persistent :class:`FootprintIndex` — footprints as a queryable store.

The batch pipeline's output is a single in-memory
:class:`~repro.core.footprint.PipelineResult`.  That is the wrong shape
for a long-running service: it exists only for the duration of one run,
and rebuilding it means re-running every snapshot.  This module turns the
per-snapshot footprint data into an *index* with a stable query surface
(:class:`~repro.core.footprint.FootprintQueries`) and two backends:

* :class:`ResultIndex` — a zero-copy adapter over a ``PipelineResult``,
  so the one-shot batch path keeps working unchanged;
* :class:`DurableFootprintIndex` — an on-disk, per-snapshot store under a
  *state directory*, updated incrementally: each snapshot's pure outcome
  (:class:`~repro.core.footprint.SnapshotOutcome`) is folded in under a
  content-addressed token, and :meth:`~DurableFootprintIndex.commit`
  recomputes the one piece of cross-snapshot state (the §6.2 Netflix
  restoration) over the ordered timeline.  Because the restoration fold
  runs at commit time, snapshots may arrive in **any order** — shuffled
  incremental ingestion produces a view bit-identical to a from-scratch
  batch run, a property the test suite asserts.

Analysis modules import their query surface from here (never from
``PipelineResult`` internals — a lint test enforces it), so every
analysis runs identically against a live batch result, a cold-loaded
index, or a daemon's incrementally-maintained one.

On-disk layout of a state directory::

    state/
      index.json             # manifest: format, corpus, {label -> token}
      snapshots/2019-10.json # one outcome payload per snapshot

All writes are atomic (temp file + ``os.replace``), and JSON payloads
serialize sets as sorted lists, so identical data produces identical
bytes.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Mapping

from repro.core.footprint import (
    FootprintQueries,
    FootprintSnapshot,
    PipelineResult,
    SnapshotOutcome,
)
from repro.core.validation import ValidationStats
from repro.net.asn import ASN
from repro.timeline import Snapshot, ordered_snapshots

__all__ = [
    "INDEX_FORMAT",
    "FootprintIndex",
    "ResultIndex",
    "IndexView",
    "DurableFootprintIndex",
    "index_of",
]

#: Version tag written into every manifest and payload file; bump on any
#: incompatible layout change so stale state directories fail loudly.
INDEX_FORMAT = "repro.footprint-index/1"


class FootprintIndex(FootprintQueries, ABC):
    """The abstract index: an ordered corpus of footprint snapshots.

    Concrete backends provide :attr:`corpus`, :attr:`snapshots` and
    :meth:`at`; every longitudinal query is inherited from
    :class:`~repro.core.footprint.FootprintQueries`.
    ``PipelineResult`` is registered as a virtual subclass, so analysis
    code annotated with ``FootprintIndex`` accepts batch results as-is.
    """

    @abstractmethod
    def at(self, snapshot: Snapshot) -> FootprintSnapshot:
        """The footprint snapshot for one date."""


FootprintIndex.register(PipelineResult)


class ResultIndex(FootprintIndex):
    """In-memory adapter presenting a ``PipelineResult`` as an index."""

    def __init__(self, result: PipelineResult) -> None:
        self._result = result

    @property
    def corpus(self) -> str:
        """The corpus the wrapped result was computed from."""
        return self._result.corpus

    @property
    def snapshots(self) -> tuple[Snapshot, ...]:
        """The wrapped result's snapshot timeline, in order."""
        return self._result.snapshots

    def at(self, snapshot: Snapshot) -> FootprintSnapshot:
        """The footprint snapshot for one date."""
        return self._result.at(snapshot)


class IndexView(FootprintIndex):
    """An immutable point-in-time view over a footprint mapping.

    :class:`DurableFootprintIndex` publishes one of these per commit;
    because a view never mutates, a reader thread that grabbed it keeps a
    consistent timeline no matter how many ingests land afterwards.
    """

    __slots__ = ("_corpus", "_snapshots", "_by_snapshot")

    def __init__(
        self,
        corpus: str,
        snapshots: tuple[Snapshot, ...],
        by_snapshot: Mapping[Snapshot, FootprintSnapshot],
    ) -> None:
        self._corpus = corpus
        self._snapshots = snapshots
        self._by_snapshot = dict(by_snapshot)

    @property
    def corpus(self) -> str:
        """The corpus this view indexes."""
        return self._corpus

    @property
    def snapshots(self) -> tuple[Snapshot, ...]:
        """The view's snapshot timeline, in order."""
        return self._snapshots

    def at(self, snapshot: Snapshot) -> FootprintSnapshot:
        """The footprint snapshot for one date."""
        return self._by_snapshot[snapshot]


def index_of(source: "FootprintIndex | PipelineResult") -> FootprintIndex:
    """Coerce a batch result (or any index) to the index surface.

    A convenience for call sites that accept both: ``PipelineResult`` is
    already a virtual ``FootprintIndex``, so this is the identity — it
    exists to make the coercion explicit and grep-able.
    """
    if not isinstance(source, FootprintIndex):
        raise TypeError(
            f"{type(source).__name__} does not provide the FootprintIndex "
            "query surface"
        )
    return source


# -- serialization ------------------------------------------------------------


def _sets_to_json(table: Mapping[str, frozenset[int]]) -> dict[str, list[int]]:
    return {key: sorted(values) for key, values in sorted(table.items())}


def _sets_from_json(payload: Mapping[str, list[int]]) -> dict[str, frozenset[int]]:
    return {key: frozenset(values) for key, values in payload.items()}


def _outcome_to_payload(outcome: SnapshotOutcome, token: str) -> dict:
    """One snapshot's pure outcome as a JSON-safe payload.

    ``netflix_restored_ases`` is deliberately **not** persisted: it is
    cross-snapshot state, recomputed by the commit-time restoration fold
    (which is what makes shuffled incremental ingestion order-independent).
    """
    footprint = outcome.footprint
    return {
        "format": INDEX_FORMAT,
        "snapshot": footprint.snapshot.label,
        "token": token,
        "footprint": {
            "raw_ip_count": footprint.raw_ip_count,
            "raw_certificate_count": footprint.raw_certificate_count,
            "validation": {
                "total": footprint.validation.total,
                "valid": footprint.validation.valid,
                "expired_only": footprint.validation.expired_only,
                "rejected": footprint.validation.rejected,
            },
            "candidate_ips": _sets_to_json(footprint.candidate_ips),
            "candidate_ases": _sets_to_json(footprint.candidate_ases),
            "confirmed_ips": _sets_to_json(footprint.confirmed_ips),
            "confirmed_ases": _sets_to_json(footprint.confirmed_ases),
            "confirmed_and_ases": _sets_to_json(footprint.confirmed_and_ases),
            "onnet_ips": _sets_to_json(footprint.onnet_ips),
            "cloudflare_filtered_ases": sorted(footprint.cloudflare_filtered_ases),
            "netflix_with_expired_ases": sorted(footprint.netflix_with_expired_ases),
        },
        "netflix_seen": sorted(outcome.netflix_seen),
        "restorable": {
            str(ip): sorted(ases) for ip, ases in sorted(outcome.restorable.items())
        },
    }


def _outcome_from_payload(payload: Mapping) -> SnapshotOutcome:
    """Rebuild a pure outcome from its payload (restoration left empty)."""
    if payload.get("format") != INDEX_FORMAT:
        raise ValueError(
            f"unsupported footprint-index payload format {payload.get('format')!r} "
            f"(this build reads {INDEX_FORMAT!r})"
        )
    data = payload["footprint"]
    footprint = FootprintSnapshot(
        snapshot=Snapshot.parse(payload["snapshot"]),
        raw_ip_count=data["raw_ip_count"],
        raw_certificate_count=data["raw_certificate_count"],
        validation=ValidationStats(**data["validation"]),
        candidate_ips=_sets_from_json(data["candidate_ips"]),
        candidate_ases=_sets_from_json(data["candidate_ases"]),
        confirmed_ips=_sets_from_json(data["confirmed_ips"]),
        confirmed_ases=_sets_from_json(data["confirmed_ases"]),
        confirmed_and_ases=_sets_from_json(data["confirmed_and_ases"]),
        onnet_ips=_sets_from_json(data["onnet_ips"]),
        cloudflare_filtered_ases=frozenset(data["cloudflare_filtered_ases"]),
        netflix_with_expired_ases=frozenset(data["netflix_with_expired_ases"]),
    )
    return SnapshotOutcome(
        footprint=footprint,
        netflix_seen=frozenset(payload["netflix_seen"]),
        restorable={
            int(ip): frozenset(ases) for ip, ases in payload["restorable"].items()
        },
    )


def _atomic_write_json(path: Path, payload: dict) -> None:
    """Write JSON so readers only ever see a complete file."""
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


# -- the durable backend ------------------------------------------------------


class DurableFootprintIndex(FootprintIndex):
    """An on-disk footprint index updated one snapshot at a time.

    Mutation protocol: :meth:`fold` (or :meth:`remove`) any number of
    snapshots, then :meth:`commit`.  A commit recomputes the §6.2 Netflix
    restoration over the full ordered timeline, atomically rewrites the
    manifest, and publishes a fresh immutable :class:`IndexView` — the
    reference swap is the only thing concurrent readers observe, so
    queries stay consistent (and available) throughout an ingest.

    The ``token`` recorded per snapshot is a content-addressed identity
    of that snapshot's inputs (see
    :meth:`~repro.datasets.FileDataset.snapshot_fingerprint`); the delta
    ingestor skips any snapshot whose token already matches.
    """

    MANIFEST = "index.json"
    SNAPSHOT_DIR = "snapshots"

    def __init__(self, state_dir: str | Path, corpus: str | None = None) -> None:
        self._dir = Path(state_dir)
        self._outcomes: dict[Snapshot, SnapshotOutcome] = {}
        self._tokens: dict[Snapshot, str] = {}
        manifest_path = self._dir / self.MANIFEST
        if manifest_path.exists():
            self._load(manifest_path, corpus)
        elif corpus is None:
            raise ValueError(
                f"no index manifest under {self._dir} — creating a new index "
                "needs an explicit corpus name"
            )
        else:
            self._corpus = corpus
        self._view = self._build_view()

    # -- query surface (delegates to the committed view) --------------------------

    @property
    def state_dir(self) -> Path:
        """The directory the index persists itself under."""
        return self._dir

    @property
    def corpus(self) -> str:
        """The corpus this index accumulates."""
        return self._corpus

    @property
    def snapshots(self) -> tuple[Snapshot, ...]:
        """The committed snapshot timeline, in order."""
        return self._view.snapshots

    def at(self, snapshot: Snapshot) -> FootprintSnapshot:
        """The committed footprint snapshot for one date."""
        return self._view.at(snapshot)

    def view(self) -> IndexView:
        """The current immutable committed view.  Server threads answer
        queries from a grabbed view, so an in-flight ingest can never
        show them a half-updated timeline."""
        return self._view

    def token(self, snapshot: Snapshot) -> str | None:
        """The content token a snapshot was folded under (None = absent)."""
        return self._tokens.get(snapshot)

    def tokens(self) -> dict[Snapshot, str]:
        """Every indexed snapshot's content token — the delta ingestor's
        view of "what the index already knows"."""
        return dict(self._tokens)

    # -- mutation -----------------------------------------------------------------

    def fold(self, outcome: SnapshotOutcome, token: str) -> None:
        """Persist one snapshot's pure outcome under its content token.

        Replaces any previous payload for the same snapshot.  The write
        is atomic, but the in-memory view is only republished by
        :meth:`commit` — fold as many snapshots as arrived, then commit
        once.
        """
        snapshot = outcome.footprint.snapshot
        payload = _outcome_to_payload(outcome, token)
        _atomic_write_json(self._payload_path(snapshot), payload)
        # Re-read through the serializer so the in-memory entry is exactly
        # what a cold load would produce (and fold() can't leak shared
        # mutable state with the caller's outcome).
        self._outcomes[snapshot] = _outcome_from_payload(payload)
        self._tokens[snapshot] = token

    def remove(self, snapshot: Snapshot) -> bool:
        """Drop one snapshot from the index (its corpus file vanished).
        Returns whether anything was removed."""
        present = snapshot in self._outcomes
        self._outcomes.pop(snapshot, None)
        self._tokens.pop(snapshot, None)
        path = self._payload_path(snapshot)
        if path.exists():
            path.unlink()
        return present

    def commit(self) -> IndexView:
        """Recompute the cross-snapshot state, persist the manifest, and
        publish (and return) the new immutable view."""
        view = self._build_view()
        _atomic_write_json(
            self._dir / self.MANIFEST,
            {
                "format": INDEX_FORMAT,
                "corpus": self._corpus,
                "snapshots": {
                    snapshot.label: self._tokens[snapshot]
                    for snapshot in sorted(self._tokens)
                },
            },
        )
        self._view = view
        return view

    # -- internals ----------------------------------------------------------------

    def _payload_path(self, snapshot: Snapshot) -> Path:
        return self._dir / self.SNAPSHOT_DIR / f"{snapshot.label}.json"

    def _load(self, manifest_path: Path, corpus: str | None) -> None:
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        if manifest.get("format") != INDEX_FORMAT:
            raise ValueError(
                f"unsupported footprint-index format {manifest.get('format')!r} "
                f"under {self._dir} (this build reads {INDEX_FORMAT!r})"
            )
        self._corpus = manifest["corpus"]
        if corpus is not None and corpus != self._corpus:
            raise ValueError(
                f"index under {self._dir} accumulates corpus "
                f"{self._corpus!r}, not {corpus!r}"
            )
        for snapshot in ordered_snapshots(manifest["snapshots"]):
            payload = json.loads(
                self._payload_path(snapshot).read_text(encoding="utf-8")
            )
            self._outcomes[snapshot] = _outcome_from_payload(payload)
            self._tokens[snapshot] = manifest["snapshots"][snapshot.label]

    def _build_view(self) -> IndexView:
        """The §6.2 restoration fold over the ordered timeline — the same
        reduction :meth:`~repro.core.pipeline.OffnetPipeline.merge_outcomes`
        performs, which is what makes an incrementally-built index
        bit-identical to a batch run regardless of arrival order."""
        order = tuple(sorted(self._outcomes))
        by_snapshot: dict[Snapshot, FootprintSnapshot] = {}
        netflix_ever_candidates: set[int] = set()
        for snapshot in order:
            outcome = self._outcomes[snapshot]
            # Fresh copy per commit: the published views must be immutable.
            footprint = _outcome_from_payload(
                _outcome_to_payload(outcome, self._tokens[snapshot])
            ).footprint
            if netflix_ever_candidates:
                restored: set[ASN] = set()
                for ip, ases in outcome.restorable.items():
                    if ip in netflix_ever_candidates:
                        restored.update(ases)
                footprint.netflix_restored_ases = frozenset(restored)
            netflix_ever_candidates.update(outcome.netflix_seen)
            by_snapshot[snapshot] = footprint
        return IndexView(self._corpus, order, by_snapshot)
