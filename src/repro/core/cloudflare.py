"""§7 — the Cloudflare customer-certificate filter.

Cloudflare issues certificates to customers of its proxy service, so a
customer back-end offering a Cloudflare-issued certificate masquerades as a
Cloudflare off-net.  The paper notices free Universal SSL certificates
carry an extra dNSName matching ``(ssl|sni)[0-9]*.cloudflaressl.com`` and
filters on it — while observing that paid dedicated/custom certificates
lack the marker and still require manual investigation (§6.1's residual
misidentification).
"""

from __future__ import annotations

import re

from repro.x509.certificate import Certificate

__all__ = ["is_cloudflare_customer_cert", "CLOUDFLARE_CUSTOMER_PATTERN"]

#: The paper's filter pattern, §7.
CLOUDFLARE_CUSTOMER_PATTERN = re.compile(r"^(ssl|sni)[0-9]*\.cloudflaressl\.com$")


def is_cloudflare_customer_cert(certificate: Certificate) -> bool:
    """True when any dNSName matches the Universal SSL marker pattern."""
    return any(
        CLOUDFLARE_CUSTOMER_PATTERN.match(name.lower()) for name in certificate.dns_names
    )
