"""Pluggable artifact caches for the stage graph.

An artifact is a stage's output plus the counter fragment the stage
emitted while computing it (the fragment is what makes a cache hit
funnel-identical to a recompute: replaying it books the same counts the
live run would have).  Caches are keyed by the content-addressed keys
:mod:`repro.core.stages.keys` derives, so a cache never needs
invalidation logic — a changed input, option or stage version simply
produces a different key and the stale entry is never asked for again.

Three tiers compose:

* :class:`MemoryCache` — a per-process dict; forked workers inherit the
  parent's entries copy-on-write, which is how warm artifacts ship
  *into* workers for free.
* :class:`DiskCache` — pickled artifacts under ``--cache-dir``, written
  atomically (tmp file + ``os.replace``) so concurrent workers of a
  ``jobs=N`` run can share one store without locks; this is also what
  ``--resume`` reads after an interrupted run.
* :class:`TieredCache` — memory in front of disk, promoting disk hits.

Heavy artifacts (per-row payloads like the §4.1 validated-record list)
skip the memory tier — see ``Stage.heavy`` — so a long run's resident
set stays bounded while the disk tier still captures everything.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Protocol, runtime_checkable

__all__ = [
    "Artifact",
    "ArtifactCache",
    "DiskCache",
    "MemoryCache",
    "NullCache",
    "TieredCache",
]

#: What a cache stores per key: ``(stage value, counter-fragment dict)``.
#: The fragment is a :meth:`~repro.obs.metrics.MetricsRegistry.to_dict`
#: payload — plain data, so every tier serialises it the same way.
Artifact = tuple[Any, dict]


@runtime_checkable
class ArtifactCache(Protocol):
    """The cache contract the stage scheduler programs against."""

    def get(self, key: str, heavy: bool = False) -> Artifact | None:
        """The artifact for ``key``, or ``None`` on a miss."""
        ...

    def put(self, key: str, artifact: Artifact, heavy: bool = False) -> None:
        """Store an artifact under its content-addressed key."""
        ...


class NullCache:
    """The cache-off behaviour: every lookup misses, stores are dropped."""

    def get(self, key: str, heavy: bool = False) -> Artifact | None:
        """Always a miss."""
        return None

    def put(self, key: str, artifact: Artifact, heavy: bool = False) -> None:
        """Dropped."""
        return None


class MemoryCache:
    """A process-local artifact dict (the default cache tier)."""

    def __init__(self) -> None:
        self._entries: dict[str, Artifact] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str, heavy: bool = False) -> Artifact | None:
        """The stored artifact, or ``None`` — no copy, callers share it."""
        return self._entries.get(key)

    def put(self, key: str, artifact: Artifact, heavy: bool = False) -> None:
        """Retain a light artifact; heavy ones are deliberately dropped."""
        if heavy:
            # Heavy artifacts (per-row payloads) would make a long run's
            # resident set grow with the corpus; they belong on disk.
            return
        self._entries[key] = artifact


class DiskCache:
    """Content-addressed pickles under a cache directory.

    Layout: ``<dir>/<key[:2]>/<key>.pkl`` (fan-out keeps directories
    small).  Writes go to a temp file in the final directory and are
    published with ``os.replace``, so a reader — another worker process
    of the same run, or a ``--resume`` after a kill — either sees a
    complete artifact or nothing.  A corrupt or truncated entry (the
    interrupted write ``--resume`` exists for) reads as a miss.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def get(self, key: str, heavy: bool = False) -> Artifact | None:
        """Unpickle the artifact; corrupt or missing entries read as a miss."""
        path = self._path(key)
        try:
            with path.open("rb") as handle:
                value, fragment = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, ValueError):
            return None
        return value, fragment

    def put(self, key: str, artifact: Artifact, heavy: bool = False) -> None:
        """Pickle the artifact and publish it atomically (``os.replace``)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(artifact, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise


class TieredCache:
    """Memory in front of disk: hits promote, stores write through."""

    def __init__(self, memory: MemoryCache, disk: DiskCache) -> None:
        self.memory = memory
        self.disk = disk

    def __contains__(self, key: str) -> bool:
        return key in self.memory or key in self.disk

    def get(self, key: str, heavy: bool = False) -> Artifact | None:
        """Memory first, then disk; a disk hit promotes into memory."""
        artifact = self.memory.get(key)
        if artifact is not None:
            return artifact
        artifact = self.disk.get(key)
        if artifact is not None:
            self.memory.put(key, artifact, heavy=heavy)
        return artifact

    def put(self, key: str, artifact: Artifact, heavy: bool = False) -> None:
        """Write through both tiers (memory skips heavy artifacts)."""
        self.memory.put(key, artifact, heavy=heavy)
        self.disk.put(key, artifact, heavy=heavy)
