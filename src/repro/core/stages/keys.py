"""Content-addressed artifact keys for the stage graph.

A stage artifact's key is the SHA-256 of a canonical JSON document
naming everything that can change the artifact's bytes:

* the **key-format version** (bump to flush every cache at once);
* the **stage name and code version** (each stage declares a version
  string and bumps it when its logic changes);
* the **option subset** the stage reads — only those switches, so
  flipping ``require_all_dnsnames`` leaves the §4.1 validation
  artifact's key (and cache entry) untouched;
* the **upstream artifact keys**, so invalidation propagates down the
  graph edges without ever hashing upstream *values*;
* the **snapshot fingerprint**: the data source's own fingerprint plus
  the corpus name and snapshot label — the identity of the store the
  root stage would load.

Keys are computable without materializing any stage value, which is
what lets a fully warm run skip even corpus loading: the scheduler
derives every key top-down, finds the terminal artifacts cached, and
never touches the source.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.timeline import Snapshot

__all__ = [
    "KEY_FORMAT",
    "artifact_key",
    "option_subset",
    "snapshot_fingerprint",
    "source_fingerprint",
]

#: Bump when the key derivation itself changes incompatibly.
KEY_FORMAT = "repro.stage-key/1"


def _jsonable(value: Any) -> Any:
    """Canonicalise an option value for hashing."""
    if isinstance(value, Snapshot):
        return value.label
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (tuple, list)):
        return [_jsonable(v) for v in value]
    raise TypeError(
        f"option value {value!r} ({type(value).__name__}) is not hashable "
        "into a stage key; extend keys._jsonable for new option types"
    )


def option_subset(options: Any, keys: tuple[str, ...]) -> dict[str, Any]:
    """The declared slice of ``PipelineOptions`` a stage reads, as
    canonical JSON-safe values."""
    return {key: _jsonable(getattr(options, key)) for key in sorted(keys)}


def source_fingerprint(source: Any) -> str | None:
    """The data source's stable self-fingerprint, or ``None`` when the
    source cannot name itself across processes.

    :class:`~repro.world.World` derives one from its ``WorldConfig``;
    :class:`~repro.datasets.FileDataset` from its manifest.  A source
    without a ``fingerprint()`` is still cacheable *within* a process
    (the pipeline substitutes an object-identity token) but refuses the
    on-disk tier — a stale disk hit against different data would be
    silent corruption.
    """
    fingerprint = getattr(source, "fingerprint", None)
    if callable(fingerprint):
        value = fingerprint()
        if not isinstance(value, str) or not value:
            raise TypeError(
                f"{type(source).__name__}.fingerprint() must return a "
                f"non-empty str, got {value!r}"
            )
        return value
    return None


def snapshot_fingerprint(source_token: str, corpus: str, snapshot: Snapshot) -> str:
    """The identity of one snapshot's input data under one source."""
    return _digest(
        {"source": source_token, "corpus": corpus, "snapshot": snapshot.label}
    )


def artifact_key(
    stage_name: str,
    stage_version: str,
    options: dict[str, Any],
    dep_keys: dict[str, str],
    snapshot_token: str,
) -> str:
    """The content-addressed key for one stage's artifact."""
    return _digest(
        {
            "format": KEY_FORMAT,
            "stage": stage_name,
            "version": stage_version,
            "options": options,
            "deps": dep_keys,
            "snapshot": snapshot_token,
        }
    )


def _digest(document: dict) -> str:
    payload = json.dumps(document, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()
