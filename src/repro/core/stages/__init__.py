"""The per-snapshot §4 dataflow as a typed, cached stage graph.

* :mod:`repro.core.stages.base` — stage declarations, the DAG, and the
  lazy caching scheduler;
* :mod:`repro.core.stages.keys` — content-addressed artifact keys;
* :mod:`repro.core.stages.cache` — the pluggable cache tiers
  (memory / disk / tiered / null);
* :mod:`repro.core.stages.offnet` — the concrete §4 stages the
  :class:`~repro.core.pipeline.OffnetPipeline` façade executes.
"""

from repro.core.stages.base import STAGE_CACHE_EVENTS, Stage, StageContext, StageGraph
from repro.core.stages.cache import (
    Artifact,
    ArtifactCache,
    DiskCache,
    MemoryCache,
    NullCache,
    TieredCache,
)
from repro.core.stages.keys import (
    KEY_FORMAT,
    artifact_key,
    option_subset,
    snapshot_fingerprint,
    source_fingerprint,
)
from repro.core.stages.offnet import (
    TERMINAL_STAGES,
    CandidateSet,
    ConfirmResult,
    IngestStats,
    MatchResult,
    NetflixResult,
    assemble_outcome,
    build_offnet_graph,
)

__all__ = [
    "KEY_FORMAT",
    "STAGE_CACHE_EVENTS",
    "TERMINAL_STAGES",
    "Artifact",
    "ArtifactCache",
    "CandidateSet",
    "ConfirmResult",
    "DiskCache",
    "IngestStats",
    "MatchResult",
    "MemoryCache",
    "NetflixResult",
    "NullCache",
    "Stage",
    "StageContext",
    "StageGraph",
    "TieredCache",
    "artifact_key",
    "assemble_outcome",
    "build_offnet_graph",
    "option_subset",
    "snapshot_fingerprint",
    "source_fingerprint",
]
