"""The §4 methodology as a typed stage graph.

This module decomposes what used to be the fused body of
``OffnetPipeline.run_snapshot`` into declared stages with explicit
edges, typed artifacts, and per-stage option subsets:

.. code-block:: text

    scan ──┬── ingest                       (corpus shape counters)
           ├── validate ── vstats           (§4.1, heavy / light split)
           └──┬───────┘
              match ──┬── onnet             (§4.2 + org→HG matching)
                      └── candidates        (§4.3 + Cloudflare filter)
    scan ─────────────────┬── confirm       (§4.5 signal confirmation)
                          └── netflix       (§6.2 per-snapshot inputs)

Design rules the cache correctness rests on:

* **Heavy/light split** — stages whose values scale with the corpus row
  count (``validate``, ``match``) are marked ``heavy``: disk-tier only,
  never shipped across the fork boundary, and *not* consumed by the
  terminal artifacts, so a warm run reuses the light suffix without
  unpickling per-row payloads.
* **Funnel counters live in light stages** — every counter the run
  report's deterministic ``funnel`` section reads (``funnel_*``) is
  emitted by a terminal light stage (``ingest``, ``vstats``, ``onnet``,
  ``candidates``, ``confirm``), so replaying cached fragments books
  bit-identical funnel counts whether a stage ran or hit.
* **Option subsets are minimal** — flipping ``require_all_dnsnames``
  re-keys ``candidates`` and its dependents only; ``scan`` through
  ``onnet`` keep their artifacts.

The pipeline façade targets :data:`TERMINAL_STAGES` and assembles the
:class:`~repro.core.footprint.SnapshotOutcome` from their values via
:func:`assemble_outcome`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.core.candidates import Candidate
from repro.core.cloudflare import is_cloudflare_customer_cert
from repro.core.signals import build_signals, evaluate_candidates, parse_policy
from repro.core.footprint import FootprintSnapshot, SnapshotOutcome
from repro.core.stages.base import Stage, StageContext, StageGraph
from repro.core.validation import ValidatedRecord, ValidationStats
from repro.net.asn import ASN
from repro.obs.metrics import MetricsRegistry

__all__ = [
    "TERMINAL_STAGES",
    "CandidateSet",
    "ConfirmResult",
    "IngestStats",
    "MatchResult",
    "NetflixResult",
    "assemble_outcome",
    "build_offnet_graph",
]

#: The §4.4/§4.5 switches that determine the confirmation evidence in
#: force and how it folds — the option subset of both confirm-driven
#: stages.  ``signals`` and ``confirm_policy`` joined with the
#: multi-signal framework so that changing either re-keys the cached
#: confirm/netflix artifacts.
_CONFIRM_OPTIONS = (
    "header_confirmation",
    "learn_headers",
    "header_learning_snapshot",
    "netflix_nginx_rule",
    "edge_priority",
    "signals",
    "confirm_policy",
)

#: The light stages the pipeline forces every run; their artifacts carry
#: every deterministic funnel counter and everything outcome assembly
#: reads, so a fully warm run touches nothing else.
TERMINAL_STAGES = ("ingest", "vstats", "onnet", "candidates", "confirm", "netflix")


# -- typed artifacts -----------------------------------------------------------


@dataclass(frozen=True, slots=True)
class IngestStats:
    """The raw corpus shape Figure 2 reads (everything else about the
    store travels as counters in the stage fragment)."""

    raw_ip_count: int
    raw_certificate_count: int


@dataclass(slots=True)
class MatchResult:
    """§4.2 + org matching over one snapshot (heavy: row-scale lists)."""

    #: Org-matched rows: ``(record, origin ASes, HG keywords)``.
    matching: list[tuple[ValidatedRecord, frozenset[ASN], tuple[str, ...]]]
    #: Lowercased dNSName tuples for every chain appearing in ``matching``.
    chain_dns: dict[int, tuple[str, ...]]
    #: §4.2 learned TLS fingerprints (dNSNames seen on-net) per HG.
    fingerprints: dict[str, frozenset[str]]
    #: On-net IPs per HG (unfiltered; the ``onnet`` stage publishes the
    #: nonempty subset the footprint keeps).
    onnet_ips: dict[str, frozenset[int]]


@dataclass(slots=True)
class CandidateSet:
    """§4.3 candidates per HG plus the §6.2/§7 side channels."""

    by_hg: dict[str, list[Candidate]]
    netflix_expired: list[Candidate]
    cloudflare_filtered_ases: frozenset[ASN]


@dataclass(slots=True)
class ConfirmResult:
    """§4.5 confirmation verdicts per HG (only HGs with candidates)."""

    candidate_ips: dict[str, frozenset[int]] = field(default_factory=dict)
    candidate_ases: dict[str, frozenset[ASN]] = field(default_factory=dict)
    confirmed_ips: dict[str, frozenset[int]] = field(default_factory=dict)
    confirmed_ases: dict[str, frozenset[ASN]] = field(default_factory=dict)
    confirmed_and_ases: dict[str, frozenset[ASN]] = field(default_factory=dict)


@dataclass(slots=True)
class NetflixResult:
    """The per-snapshot half of the §6.2 Netflix restorations."""

    with_expired_ases: frozenset[ASN]
    #: IPs that presented a Netflix certificate (valid or expired-only).
    seen: frozenset[int]
    #: Port-80-only IPs mapped to origin ASes (restoration candidates).
    restorable: dict[int, frozenset[ASN]]


# -- stage bodies --------------------------------------------------------------


def _run_scan(ctx: StageContext, inputs: Mapping, counters: MetricsRegistry):
    """Load the corpus + IP-to-AS view (non-cacheable: live objects).

    Inside a shard the read routes through the source's shard-local
    path (a one-entry scan LRU), which changes worker memory, never
    data — shard identity stays out of the artifact key."""
    return ctx.pipeline._scan_and_map(ctx.snapshot, shard=ctx.shard)


def _run_ingest(
    ctx: StageContext, inputs: Mapping, counters: MetricsRegistry
) -> IngestStats:
    scan, _ = inputs["scan"]
    label = ctx.snapshot.label
    store_stats = scan.store.stats()
    # Ingestion robustness accounting: file-backed snapshots carry the
    # reader's IngestReport (records seen/accepted/quarantined/repaired,
    # per error class).  Booked here — in a cacheable light stage — so a
    # warm run replays the same ingest section the cold run reported.
    ingest_report = getattr(scan, "ingest", None)
    if ingest_report is not None:
        counters.counter("ingest_records", event="seen", snapshot=label).inc(
            ingest_report.seen
        )
        counters.counter("ingest_records", event="accepted", snapshot=label).inc(
            ingest_report.accepted
        )
        for error_class, count in sorted(ingest_report.quarantined_by_class.items()):
            counters.counter(
                "ingest_quarantined", error_class=error_class, snapshot=label
            ).inc(count)
        for error_class, count in sorted(ingest_report.repaired_by_class.items()):
            counters.counter(
                "ingest_repaired", error_class=error_class, snapshot=label
            ).inc(count)
    counters.counter("funnel_tls_records", snapshot=label).inc(store_stats.tls_rows)
    counters.counter("funnel_http_records", snapshot=label).inc(store_stats.http_rows)
    counters.counter("funnel_unique_certificates", snapshot=label).inc(
        store_stats.unique_chains
    )
    # Columnar-store shape metrics: how much §4's "few certificates,
    # many IPs" redundancy the intern tables absorbed this snapshot.
    counters.counter("store_tls_rows", snapshot=label).inc(store_stats.tls_rows)
    counters.counter("store_unique_chains", snapshot=label).inc(
        store_stats.unique_chains
    )
    for table, entries in (
        ("org", store_stats.org_entries),
        ("dns", store_stats.dns_entries),
        ("header", store_stats.header_entries),
    ):
        counters.counter("store_intern_entries", table=table, snapshot=label).inc(
            entries
        )
    return IngestStats(
        raw_ip_count=scan.ip_count,
        raw_certificate_count=scan.unique_certificates(),
    )


def _run_validate(ctx: StageContext, inputs: Mapping, counters: MetricsRegistry):
    scan, _ = inputs["scan"]
    return ctx.pipeline._validated(scan, counters)


def _run_vstats(
    ctx: StageContext, inputs: Mapping, counters: MetricsRegistry
) -> ValidationStats:
    scan, _ = inputs["scan"]
    _, stats = inputs["validate"]
    label = ctx.snapshot.label
    counters.counter("funnel_valid", snapshot=label).inc(stats.valid)
    counters.counter("funnel_expired_only", snapshot=label).inc(stats.expired_only)
    counters.counter("funnel_rejected", snapshot=label).inc(stats.rejected)
    # The §4.1 dedup payoff (one verification per unique chain, verdicts
    # broadcast over the rows) is booked here — in a light, cacheable
    # stage — so the report's store section replays bit-identically on
    # warm-cache runs; the heavy validate stage's fragment never does.
    if ctx.options.validate_certificates:
        counters.counter("validation_work", unit="unique_chains").inc(
            len(scan.store.chains)
        )
        counters.counter("validation_work", unit="rows").inc(
            scan.store.tls_row_count
        )
    return stats


def _run_match(
    ctx: StageContext, inputs: Mapping, counters: MetricsRegistry
) -> MatchResult:
    pipeline = ctx.pipeline
    scan, ip2as = inputs["scan"]
    records, _ = inputs["validate"]
    store = scan.store

    # Single pass over rows, but all per-unique-certificate work — the
    # org→HG keyword scan and the lowered dNSName tuples — was computed
    # once per intern-table entry, not once per record.
    org_hgs = pipeline._org_table_hgs(store)
    chain_hgs: list[tuple[str, ...]] = [
        org_hgs[org_index] for org_index in store.chain_org
    ]
    chain_dns_table: list[tuple[str, ...]] = [
        store.dns_table[dns_index] for dns_index in store.chain_dns
    ]
    counters.counter("match_org_scans", unit="unique_orgs").inc(len(org_hgs))
    counters.counter("match_org_scans", unit="rows").inc(len(records))

    keywords = pipeline._keywords
    hg_ases = pipeline._hg_ases
    onnet_ips: dict[str, set[int]] = {k: set() for k in keywords}
    fingerprints: dict[str, set[str]] = {k: set() for k in keywords}
    matching: list[tuple[ValidatedRecord, frozenset[ASN], tuple[str, ...]]] = []
    for record in records:
        hgs = chain_hgs[record.chain_index]
        if not hgs:
            continue
        origins = ip2as.lookup(record.ip)
        if not origins:
            continue
        matching.append((record, origins, hgs))
        if record.expired_only:
            continue
        for keyword in hgs:
            if origins & hg_ases[keyword]:
                onnet_ips[keyword].add(record.ip)
                fingerprints[keyword].update(chain_dns_table[record.chain_index])
    return MatchResult(
        matching=matching,
        chain_dns={
            record.chain_index: chain_dns_table[record.chain_index]
            for record, _, _ in matching
        },
        fingerprints={k: frozenset(v) for k, v in fingerprints.items()},
        onnet_ips={k: frozenset(v) for k, v in onnet_ips.items()},
    )


def _run_onnet(
    ctx: StageContext, inputs: Mapping, counters: MetricsRegistry
) -> dict[str, frozenset[int]]:
    match: MatchResult = inputs["match"]
    label = ctx.snapshot.label
    # The org-matched funnel column is booked here, in a light stage, so
    # warm runs replay it without materializing the heavy match artifact.
    org_matched: dict[str, int] = {}
    for _, _, hgs in match.matching:
        for keyword in hgs:
            org_matched[keyword] = org_matched.get(keyword, 0) + 1
    for keyword, count in org_matched.items():
        counters.counter("funnel_org_matched", hg=keyword, snapshot=label).inc(count)
    onnet = {k: ips for k, ips in match.onnet_ips.items() if ips}
    for keyword, ips in onnet.items():
        counters.counter("funnel_onnet_ips", hg=keyword, snapshot=label).inc(len(ips))
    return onnet


def _run_candidates(
    ctx: StageContext, inputs: Mapping, counters: MetricsRegistry
) -> CandidateSet:
    """§4.3 candidates per HG (plus the Netflix expired variant).  The
    all-dNSNames-subset test depends only on (unique certificate, HG),
    so its result is memoised per (chain_index, keyword) and every
    further row presenting the same certificate reuses it."""
    pipeline = ctx.pipeline
    options = ctx.options
    match: MatchResult = inputs["match"]
    keywords = pipeline._keywords
    hg_ases = pipeline._hg_ases

    by_hg: dict[str, list[Candidate]] = {k: [] for k in keywords}
    netflix_expired: list[Candidate] = []
    subset_ok: dict[tuple[int, str], bool] = {}
    subset_computed = subset_reused = 0
    for record, origins, hgs in match.matching:
        chain_index = record.chain_index
        for keyword in hgs:
            names = match.fingerprints[keyword]
            if not names:
                continue
            if origins & hg_ases[keyword]:
                continue
            if options.require_all_dnsnames:
                key = (chain_index, keyword)
                ok = subset_ok.get(key)
                if ok is None:
                    ok = all(n in names for n in match.chain_dns[chain_index])
                    subset_ok[key] = ok
                    subset_computed += 1
                else:
                    subset_reused += 1
                if not ok:
                    continue
            candidate = Candidate(
                ip=record.ip,
                certificate=record.certificate,
                ases=origins,
                expired_only=record.expired_only,
            )
            if record.expired_only:
                if keyword == "netflix":
                    netflix_expired.append(candidate)
                continue
            by_hg[keyword].append(candidate)
    counters.counter("match_subset_tests", event="computed").inc(subset_computed)
    counters.counter("match_subset_tests", event="reused").inc(subset_reused)

    # §7: the Cloudflare customer-certificate filter rides along here —
    # it reads no options, only the candidate set.
    surviving = [
        c
        for c in by_hg.get("cloudflare", [])
        if not is_cloudflare_customer_cert(c.certificate)
    ]
    return CandidateSet(
        by_hg=by_hg,
        netflix_expired=netflix_expired,
        cloudflare_filtered_ases=_ases_of(surviving),
    )


def _run_confirm(
    ctx: StageContext, inputs: Mapping, counters: MetricsRegistry
) -> ConfirmResult:
    pipeline = ctx.pipeline
    options = ctx.options
    scan, _ = inputs["scan"]
    candidates: CandidateSet = inputs["candidates"]
    label = ctx.snapshot.label
    result = ConfirmResult()
    rules = pipeline.header_rules() if options.header_confirmation else {}
    signals = build_signals(options.signals)
    policy = parse_policy(options.confirm_policy)
    for keyword in pipeline._keywords:
        found = candidates.by_hg[keyword]
        if not found:
            continue
        result.candidate_ips[keyword] = frozenset(c.ip for c in found)
        result.candidate_ases[keyword] = _ases_of(found)
        if options.header_confirmation:
            confirmed = [
                d
                for d in evaluate_candidates(
                    keyword, found, scan, rules,
                    signals=signals,
                    policy=policy,
                    mode="or",
                    netflix_nginx_rule=options.netflix_nginx_rule,
                    edge_priority=options.edge_priority,
                    registry=counters,
                )
                if d.confirmed
            ]
            confirmed_and = [
                d
                for d in evaluate_candidates(
                    keyword, found, scan, rules,
                    signals=signals,
                    policy=policy,
                    mode="and",
                    netflix_nginx_rule=options.netflix_nginx_rule,
                    edge_priority=options.edge_priority,
                    registry=counters,
                    book_signals=False,
                )
                if d.confirmed
            ]
            result.confirmed_ips[keyword] = frozenset(
                c.candidate.ip for c in confirmed
            )
            result.confirmed_ases[keyword] = _ases_of(
                [c.candidate for c in confirmed]
            )
            result.confirmed_and_ases[keyword] = _ases_of(
                [c.candidate for c in confirmed_and]
            )
        else:
            result.confirmed_ips[keyword] = result.candidate_ips[keyword]
            result.confirmed_ases[keyword] = result.candidate_ases[keyword]
            result.confirmed_and_ases[keyword] = result.candidate_ases[keyword]
        counters.counter("funnel_candidates", hg=keyword, snapshot=label).inc(
            len(result.candidate_ips[keyword])
        )
        counters.counter("funnel_confirmed", hg=keyword, snapshot=label).inc(
            len(result.confirmed_ips[keyword])
        )
    return result


def _run_netflix(
    ctx: StageContext, inputs: Mapping, counters: MetricsRegistry
) -> NetflixResult:
    """§6.2: the per-snapshot half of the Netflix restorations.  The
    non-TLS restoration needs the cross-snapshot "ever a candidate"
    set, so this stage only gathers its inputs: which IPs presented
    Netflix certificates now, and which port-80-only IPs could be
    restored (with their origin ASes resolved while the snapshot's
    ip2as view is at hand)."""
    pipeline = ctx.pipeline
    options = ctx.options
    scan, ip2as = inputs["scan"]
    candidates: CandidateSet = inputs["candidates"]
    rules = pipeline.header_rules() if options.header_confirmation else {}
    with_expired = pipeline._netflix_with_expired(
        ctx.snapshot,
        scan,
        candidates.by_hg.get("netflix", []),
        candidates.netflix_expired,
        rules,
    )
    seen = frozenset(
        {c.ip for c in candidates.by_hg.get("netflix", [])}
        | {c.ip for c in candidates.netflix_expired}
    )
    current_tls_ips = scan.unique_ips()
    restorable: dict[int, frozenset[ASN]] = {}
    for record in scan.http_records:
        if record.port != 80:
            continue
        ip = record.ip
        if ip in current_tls_ips or ip in restorable:
            continue
        origins = ip2as.lookup(ip)
        if origins:
            restorable[ip] = origins
    return NetflixResult(
        with_expired_ases=with_expired, seen=seen, restorable=restorable
    )


def _ases_of(candidates: list[Candidate]) -> frozenset[ASN]:
    ases: set[ASN] = set()
    for candidate in candidates:
        ases |= candidate.ases
    return frozenset(ases)


# -- the graph -----------------------------------------------------------------


def build_offnet_graph() -> StageGraph:
    """The §4 per-snapshot dataflow as a :class:`StageGraph`."""
    return StageGraph(
        (
            Stage(
                name="scan",
                deps=(),
                # on_error is part of the key: on a dirty corpus the error
                # policy decides which records survive ingestion, so every
                # downstream artifact (all stages depend on scan) must
                # re-key when it changes.  quarantine_dir is not: where
                # the quarantine log lands never changes the data.
                option_keys=("corpus", "include_ipv6", "on_error"),
                run=_run_scan,
                cacheable=False,
                produces="(ScanSnapshot, IPToASMap) — the live corpus view",
            ),
            Stage(
                name="ingest",
                deps=("scan",),
                option_keys=(),
                run=_run_ingest,
                version="3",  # v3: format-autodetecting corpus reads (registry)
                produces="IngestStats + corpus/store/ingest shape counters",
            ),
            Stage(
                name="validate",
                deps=("scan",),
                option_keys=("validate_certificates",),
                run=_run_validate,
                heavy=True,
                produces="(list[ValidatedRecord], ValidationStats) — §4.1",
            ),
            Stage(
                name="vstats",
                deps=("scan", "validate"),
                # validate_certificates gates the validation_work booking
                # (a passthrough run performs no verifications to count).
                option_keys=("validate_certificates",),
                run=_run_vstats,
                version="2",  # v2: books the validation_work counters
                produces="ValidationStats + the §4.1 funnel/work counters",
            ),
            Stage(
                name="match",
                deps=("scan", "validate"),
                option_keys=(),
                run=_run_match,
                heavy=True,
                produces="MatchResult — org→HG rows + §4.2 fingerprints",
            ),
            Stage(
                name="onnet",
                deps=("match",),
                option_keys=(),
                run=_run_onnet,
                produces="on-net IPs per HG + org-matched funnel counters",
            ),
            Stage(
                name="candidates",
                deps=("match",),
                option_keys=("require_all_dnsnames",),
                run=_run_candidates,
                produces="CandidateSet — §4.3 + the §7 Cloudflare filter",
            ),
            Stage(
                name="confirm",
                deps=("scan", "candidates"),
                option_keys=_CONFIRM_OPTIONS,
                run=_run_confirm,
                version="2",  # v2: multi-signal engine + signal counters
                produces="ConfirmResult — §4.5 per-HG verdict sets",
            ),
            Stage(
                name="netflix",
                deps=("scan", "candidates"),
                option_keys=_CONFIRM_OPTIONS,
                run=_run_netflix,
                version="2",  # v2: option subset gained signals/confirm_policy
                produces="NetflixResult — §6.2 restoration inputs",
            ),
        )
    )


def assemble_outcome(
    snapshot, values: Mapping[str, object], registry: MetricsRegistry
) -> SnapshotOutcome:
    """Fold the terminal stage artifacts into a fresh
    :class:`~repro.core.footprint.SnapshotOutcome`.

    Always builds new footprint/dict objects: cached artifacts may be
    shared across runs (the memory tier returns the same objects), and
    the cross-snapshot merge mutates the footprint it receives.
    """
    ingest: IngestStats = values["ingest"]  # type: ignore[assignment]
    stats: ValidationStats = values["vstats"]  # type: ignore[assignment]
    onnet: dict[str, frozenset[int]] = values["onnet"]  # type: ignore[assignment]
    candidates: CandidateSet = values["candidates"]  # type: ignore[assignment]
    confirm: ConfirmResult = values["confirm"]  # type: ignore[assignment]
    netflix: NetflixResult = values["netflix"]  # type: ignore[assignment]

    footprint = FootprintSnapshot(
        snapshot=snapshot,
        raw_ip_count=ingest.raw_ip_count,
        raw_certificate_count=ingest.raw_certificate_count,
        validation=stats,
    )
    footprint.onnet_ips = dict(onnet)
    footprint.candidate_ips = dict(confirm.candidate_ips)
    footprint.candidate_ases = dict(confirm.candidate_ases)
    footprint.confirmed_ips = dict(confirm.confirmed_ips)
    footprint.confirmed_ases = dict(confirm.confirmed_ases)
    footprint.confirmed_and_ases = dict(confirm.confirmed_and_ases)
    footprint.cloudflare_filtered_ases = candidates.cloudflare_filtered_ases
    footprint.netflix_with_expired_ases = netflix.with_expired_ases
    return SnapshotOutcome(
        footprint=footprint,
        netflix_seen=netflix.seen,
        restorable=dict(netflix.restorable),
        metrics=registry,
    )
