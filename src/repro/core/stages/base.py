"""The typed stage graph: declarations, scheduling, artifact caching.

A :class:`Stage` is one step of the §4 dataflow as a small object: a
declared name, the names of the stages it consumes, the subset of
``PipelineOptions`` switches it reads, a code-version string, and a pure
``run()``.  A :class:`StageGraph` owns the edges and the scheduler.

The scheduler is a build system in miniature:

1. every stage's artifact key is derived **top-down from keys alone**
   (:mod:`repro.core.stages.keys`) — no stage value is needed to know
   whether a downstream artifact is reusable;
2. targets are then **forced lazily**: a cached stage loads its value
   and replays its counter fragment; only a miss materializes its
   inputs (recursively), runs the stage, and stores the new artifact.

Consequences the tests pin down: a fully warm run never loads the
corpus at all; flipping one option switch recomputes exactly the
invalidated suffix of the graph; and because every stage's funnel
counters travel inside its artifact, a cache hit books bit-identical
funnel counts to a recompute.
"""

from __future__ import annotations

from dataclasses import dataclass
from graphlib import CycleError, TopologicalSorter
from typing import Any, Callable, Iterable, Mapping

from repro.core.stages.cache import ArtifactCache, NullCache
from repro.core.stages.keys import artifact_key, option_subset
from repro.obs.metrics import MetricsRegistry
from repro.obs.timers import stage_timer

__all__ = ["Stage", "StageContext", "StageGraph", "STAGE_CACHE_EVENTS"]

#: The counter every cache lookup books into the run report:
#: ``stage_cache_events{stage=..., event=hit|miss|store}``.
STAGE_CACHE_EVENTS = "stage_cache_events"


@dataclass(frozen=True, slots=True)
class StageContext:
    """Everything a stage ``run()`` may touch besides its typed inputs.

    ``pipeline`` carries the per-run collaborators (data source, the
    §4.1 validator with its cross-snapshot verdict caches, the learned
    §4.4 header rules); ``options`` is the full switch set, but a stage
    must only read the switches it declared in ``option_keys`` — the
    cache key covers nothing else.

    ``shard`` is the :class:`~repro.datasets.Shard` this execution runs
    inside, or ``None`` outside the parallel path.  It is *execution
    metadata only*: artifact keys derive from options and tokens, never
    from the shard, so a cache populated at one shard geometry hits at
    every other (including serial ``--resume``).  The scan stage uses it
    to pick the shard-local read path on sources that offer one.
    """

    pipeline: Any
    snapshot: Any
    options: Any
    shard: Any = None


@dataclass(frozen=True, slots=True)
class Stage:
    """One declared step of the per-snapshot dataflow.

    A stage is a pure function ``run(ctx, inputs, counters) -> value``
    plus the metadata the scheduler needs to cache it soundly: its
    ``deps`` (whose values become ``inputs``), the ``option_keys`` it
    is allowed to read, a ``version`` to bump when its logic changes,
    and whether its artifact is ``cacheable``/``heavy``.  The artifact
    key is derived from exactly this metadata plus the upstream keys
    and the data fingerprint — nothing else can invalidate it.
    """

    #: The stage's name — also its label in timings and cache counters.
    name: str
    #: Names of upstream stages whose values ``run`` consumes.
    deps: tuple[str, ...]
    #: The ``PipelineOptions`` switches this stage reads (its cache key
    #: covers exactly these, so unrelated flips never invalidate it).
    option_keys: tuple[str, ...]
    #: The stage body: ``run(ctx, inputs, counters) -> value``.  Must be
    #: pure in (inputs, declared options, source data) and must book
    #: every deterministic counter into ``counters`` — that fragment is
    #: cached with the value and replayed on hits.
    run: Callable[[StageContext, Mapping[str, Any], MetricsRegistry], Any]
    #: Bump when the stage's logic changes — old artifacts die with the
    #: old version string.
    version: str = "1"
    #: Whether the artifact may be cached at all (the corpus-loading
    #: root stage is not: its value is the live store object).
    cacheable: bool = True
    #: Heavy artifacts (per-row payloads) skip the memory tier and are
    #: never shipped across the fork boundary.
    heavy: bool = False
    #: Free-form input/output type notes, surfaced by ``--stages list``.
    produces: str = ""


class StageGraph:
    """A validated DAG of stages plus the caching scheduler.

    Construction validates the graph (unique names, known deps, no
    cycles) and fixes a topological ``order``.  :meth:`execute` forces
    a target set through an :class:`~repro.core.stages.cache.ArtifactCache`,
    replaying cached counter fragments on hits; :meth:`probe` asks
    which artifacts already exist without running anything;
    :meth:`keys`/:meth:`closure` expose the addressing and dependency
    closure the CLI surfaces build on.
    """

    def __init__(self, stages: Iterable[Stage]) -> None:
        self.stages: dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self.stages:
                raise ValueError(f"duplicate stage name {stage.name!r}")
            self.stages[stage.name] = stage
        sorter: TopologicalSorter = TopologicalSorter()
        for stage in self.stages.values():
            for dep in stage.deps:
                if dep not in self.stages:
                    raise ValueError(
                        f"stage {stage.name!r} depends on unknown stage {dep!r}"
                    )
            sorter.add(stage.name, *stage.deps)
        try:
            self.order: tuple[str, ...] = tuple(sorter.static_order())
        except CycleError as error:
            raise ValueError(f"stage graph has a cycle: {error.args[1]}") from error

    # -- keying ------------------------------------------------------------

    def keys_for(self, options: Any, snapshot_token: str) -> dict[str, str]:
        """Every stage's artifact key, derived without running anything."""
        keys: dict[str, str] = {}
        for name in self.order:
            stage = self.stages[name]
            keys[name] = artifact_key(
                stage.name,
                stage.version,
                option_subset(options, stage.option_keys),
                {dep: keys[dep] for dep in stage.deps},
                snapshot_token,
            )
        return keys

    def closure(self, targets: Iterable[str]) -> tuple[str, ...]:
        """``targets`` plus every transitive dependency, in topo order."""
        wanted: set[str] = set()
        frontier = list(targets)
        while frontier:
            name = frontier.pop()
            if name in wanted:
                continue
            if name not in self.stages:
                raise KeyError(
                    f"unknown stage {name!r}; stages: {', '.join(self.order)}"
                )
            wanted.add(name)
            frontier.extend(self.stages[name].deps)
        return tuple(name for name in self.order if name in wanted)

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        ctx: StageContext,
        snapshot_token: str,
        registry: MetricsRegistry,
        cache: ArtifactCache | None = None,
        targets: Iterable[str] | None = None,
        shipment: list[tuple[str, str, Any]] | None = None,
    ) -> dict[str, Any]:
        """Force ``targets`` (default: every stage), returning the stage
        values the run touched.

        A cached stage is a *hit*: its value loads, its counter fragment
        merges into ``registry``, and its inputs are never materialized.
        A miss forces its inputs first, runs the stage inside a
        :func:`~repro.obs.timers.stage_timer` span with a fresh counter
        fragment, merges + stores the fragment alongside the value, and
        appends light artifacts to ``shipment`` (the parallel executor's
        homeward channel).  Cache traffic books into
        ``stage_cache_events{stage=, event=hit|miss|store}``.
        """
        cache = cache if cache is not None else NullCache()
        keys = self.keys_for(ctx.options, snapshot_token)
        # Force the *targets* only — their dependencies materialize
        # recursively, and only behind a cache miss.  (closure() still
        # runs first so an unknown target fails fast by name.)
        if targets is not None:
            self.closure(targets)
            wanted: tuple[str, ...] = tuple(
                name for name in self.order if name in set(targets)
            )
        else:
            wanted = self.order
        values: dict[str, Any] = {}

        def force(name: str) -> Any:
            if name in values:
                return values[name]
            stage = self.stages[name]
            with stage_timer(registry, stage.name):
                if stage.cacheable:
                    artifact = cache.get(keys[name], heavy=stage.heavy)
                    if artifact is not None:
                        value, fragment = artifact
                        registry.merge(MetricsRegistry.from_dict(fragment))
                        registry.counter(
                            STAGE_CACHE_EVENTS, stage=stage.name, event="hit"
                        ).inc()
                        values[name] = value
                        return value
                    registry.counter(
                        STAGE_CACHE_EVENTS, stage=stage.name, event="miss"
                    ).inc()
                inputs = {dep: force(dep) for dep in stage.deps}
                counters = MetricsRegistry()
                value = stage.run(ctx, inputs, counters)
                registry.merge(counters)
            if stage.cacheable:
                artifact = (value, counters.to_dict())
                cache.put(keys[name], artifact, heavy=stage.heavy)
                registry.counter(
                    STAGE_CACHE_EVENTS, stage=stage.name, event="store"
                ).inc()
                if shipment is not None and not stage.heavy:
                    shipment.append((keys[name], stage.name, artifact))
            values[name] = value
            return value

        for name in wanted:
            force(name)
        return values

    def probe(
        self, options: Any, snapshot_token: str, cache: ArtifactCache
    ) -> dict[str, bool]:
        """Which stages already have a cached artifact (no execution) —
        what ``--resume`` reports before restarting an interrupted run."""
        keys = self.keys_for(options, snapshot_token)
        report: dict[str, bool] = {}
        for name in self.order:
            stage = self.stages[name]
            if not stage.cacheable:
                report[name] = False
            elif hasattr(cache, "__contains__"):
                report[name] = keys[name] in cache
            else:
                report[name] = cache.get(keys[name], heavy=stage.heavy) is not None
        return report
