"""§4.5 — confirming candidate off-nets with HTTP(S) header fingerprints.

A candidate is confirmed when its response headers match the hypergiant's
fingerprint, with two paper-specific refinements:

* **Netflix default-nginx**: a server holding a Netflix certificate that
  answers with nothing but a stock ``Server: nginx`` banner counts as a
  Netflix off-net (§4.4's "interesting case").
* **Edge-CDN priority** (§7 Reverse Proxies): when a response matches both
  the candidate HG *and* a third-party delivery CDN (Akamai, Cloudflare,
  ...), the edge CDN is taken to be the server operator and the candidate
  is rejected — unless the candidate *is* that CDN.

Since the multi-signal refactor this module is a façade: the matching
logic lives in :mod:`repro.core.signals.header` (the ``header`` signal),
and :func:`confirm_candidates` runs the signal engine with the
``paper-default`` combine policy over the header signal alone — the
configuration that reproduces the original behaviour bit for bit.
Callers that want more channels (TLS stacks, certificate corroboration)
or a different fold use :func:`repro.core.signals.evaluate_candidates`
directly, as the confirm stage does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import Candidate
from repro.core.signals.engine import evaluate_candidates
from repro.core.signals.header import EDGE_CDNS, HeaderSignal, is_default_nginx
from repro.core.signals.policy import PaperDefaultPolicy
from repro.hypergiants.profiles import HeaderRule
from repro.obs.metrics import MetricsRegistry
from repro.scan.records import ScanSnapshot

__all__ = ["EDGE_CDNS", "ConfirmedOffnet", "confirm_candidates", "is_default_nginx"]


@dataclass(frozen=True, slots=True)
class ConfirmedOffnet:
    """A candidate that passed header confirmation."""

    candidate: Candidate
    #: Which port(s) produced the match: "http", "https", or "both".
    matched_on: str
    #: Structured per-port evidence from the header signal
    #: (``https_rule`` / ``http_rule``): a ``both`` match that used
    #: different rules on the two ports keeps both identities instead
    #: of conflating them behind one ``matched_on`` label.
    evidence: tuple[tuple[str, str], ...] = ()

    def evidence_dict(self) -> dict[str, str]:
        """The evidence pairs as a dict (keys are unique)."""
        return dict(self.evidence)


def confirm_candidates(
    hypergiant: str,
    candidates: list[Candidate],
    scan: ScanSnapshot,
    rules: dict[str, tuple[HeaderRule, ...]],
    mode: str = "or",
    netflix_nginx_rule: bool = True,
    edge_priority: bool = True,
    registry: MetricsRegistry | None = None,
) -> list[ConfirmedOffnet]:
    """Confirm candidates against the header corpus of ``scan``.

    ``mode`` selects Figure 4's variants: ``"or"`` confirms when either the
    HTTP or the HTTPS response matches, ``"and"`` requires both corpuses to
    agree (missing corpus ⇒ no match in that corpus).

    When ``registry`` is given, the pass counts its own funnel step:
    ``confirm_checked_total{hg,mode}`` candidates examined,
    ``confirm_passed_total{hg,mode,matched_on}`` survivors by which
    port(s) produced the match.
    """
    decisions = evaluate_candidates(
        hypergiant,
        candidates,
        scan,
        rules,
        signals=(HeaderSignal(),),
        policy=PaperDefaultPolicy(),
        mode=mode,
        netflix_nginx_rule=netflix_nginx_rule,
        edge_priority=edge_priority,
        registry=registry,
        book_signals=False,
    )
    return [
        ConfirmedOffnet(
            candidate=decision.candidate,
            matched_on=decision.matched_on,
            evidence=decision.verdicts[0].evidence,
        )
        for decision in decisions
        if decision.confirmed
    ]
