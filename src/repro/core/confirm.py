"""§4.5 — confirming candidate off-nets with HTTP(S) header fingerprints.

A candidate is confirmed when its response headers match the hypergiant's
fingerprint, with two paper-specific refinements:

* **Netflix default-nginx**: a server holding a Netflix certificate that
  answers with nothing but a stock ``Server: nginx`` banner counts as a
  Netflix off-net (§4.4's "interesting case").
* **Edge-CDN priority** (§7 Reverse Proxies): when a response matches both
  the candidate HG *and* a third-party delivery CDN (Akamai, Cloudflare,
  ...), the edge CDN is taken to be the server operator and the candidate
  is rejected — unless the candidate *is* that CDN.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import Candidate
from repro.hypergiants.profiles import HeaderRule, STANDARD_HEADERS
from repro.obs.metrics import MetricsRegistry
from repro.scan.records import HTTPRecord, ScanSnapshot

__all__ = ["EDGE_CDNS", "ConfirmedOffnet", "confirm_candidates", "is_default_nginx"]

#: CDNs that operate edges on behalf of content owners (§7's conflict list).
EDGE_CDNS: tuple[str, ...] = (
    "akamai",
    "cloudflare",
    "fastly",
    "verizon",
    "cdnetworks",
    "limelight",
)


@dataclass(frozen=True, slots=True)
class ConfirmedOffnet:
    """A candidate that passed header confirmation."""

    candidate: Candidate
    #: Which port(s) produced the match: "http", "https", or "both".
    matched_on: str


def is_default_nginx(headers: dict[str, str]) -> bool:
    """A stock nginx response: ``Server: nginx`` and nothing non-standard."""
    server = None
    for name, value in headers.items():
        lowered = name.lower()
        if lowered == "server":
            server = value
        elif lowered not in STANDARD_HEADERS:
            return False
    return server is not None and server.lower().startswith("nginx")


def _matches(rules: tuple[HeaderRule, ...], headers: dict[str, str]) -> bool:
    return any(rule.matches_any(headers) for rule in rules)


def _record_headers(record: HTTPRecord | None) -> dict[str, str] | None:
    return None if record is None else record.header_dict()


def confirm_candidates(
    hypergiant: str,
    candidates: list[Candidate],
    scan: ScanSnapshot,
    rules: dict[str, tuple[HeaderRule, ...]],
    mode: str = "or",
    netflix_nginx_rule: bool = True,
    edge_priority: bool = True,
    registry: MetricsRegistry | None = None,
) -> list[ConfirmedOffnet]:
    """Confirm candidates against the header corpus of ``scan``.

    ``mode`` selects Figure 4's variants: ``"or"`` confirms when either the
    HTTP or the HTTPS response matches, ``"and"`` requires both corpuses to
    agree (missing corpus ⇒ no match in that corpus).

    When ``registry`` is given, the pass counts its own funnel step:
    ``confirm_checked_total{hg,mode}`` candidates examined,
    ``confirm_passed_total{hg,mode,matched_on}`` survivors by which
    port(s) produced the match.
    """
    if mode not in ("or", "and"):
        raise ValueError(f"mode must be 'or' or 'and', not {mode!r}")
    own_rules = rules.get(hypergiant, ())
    confirmed: list[ConfirmedOffnet] = []
    if registry is not None:
        registry.counter("confirm_checked_total", hg=hypergiant, mode=mode).inc(
            len(candidates)
        )
    for candidate in candidates:
        https_headers = _record_headers(scan.http_for(candidate.ip, 443))
        http_headers = _record_headers(scan.http_for(candidate.ip, 80))

        https_match = _port_match(
            hypergiant, own_rules, https_headers, rules, netflix_nginx_rule, edge_priority
        )
        http_match = _port_match(
            hypergiant, own_rules, http_headers, rules, netflix_nginx_rule, edge_priority
        )

        if mode == "or":
            ok = https_match or http_match
        else:
            ok = https_match and http_match
        if not ok:
            continue
        matched_on = "both" if (https_match and http_match) else (
            "https" if https_match else "http"
        )
        if registry is not None:
            registry.counter(
                "confirm_passed_total", hg=hypergiant, mode=mode, matched_on=matched_on
            ).inc()
        confirmed.append(ConfirmedOffnet(candidate=candidate, matched_on=matched_on))
    return confirmed


def _port_match(
    hypergiant: str,
    own_rules: tuple[HeaderRule, ...],
    headers: dict[str, str] | None,
    all_rules: dict[str, tuple[HeaderRule, ...]],
    netflix_nginx_rule: bool,
    edge_priority: bool,
) -> bool:
    if headers is None:
        return False
    matched = _matches(own_rules, headers)
    if not matched and netflix_nginx_rule and hypergiant == "netflix":
        matched = is_default_nginx(headers)
    if not matched:
        return False
    if edge_priority and hypergiant not in EDGE_CDNS:
        for edge in EDGE_CDNS:
            if _matches(all_rules.get(edge, ()), headers):
                return False  # the edge CDN operates this box, not the HG
    return True
