"""The paper's methodology (§4): from certificate corpuses to off-net
footprints.

* :mod:`repro.core.validation` — §4.1 certificate validation against the
  WebPKI (with an "accept expired" variant used by the Netflix analysis).
* :mod:`repro.core.tls_fingerprint` — §4.2 learning per-HG TLS fingerprints
  from the HG's own address space.
* :mod:`repro.core.candidates` — §4.3 the all-dNSNames-subset candidate
  rule applied outside the HG's ASes.
* :mod:`repro.core.header_fingerprint` — §4.4 learning HTTP(S) header
  fingerprints from on-net responses (automating the paper's manual step).
* :mod:`repro.core.confirm` — §4.5 confirming candidates with headers,
  including the Netflix default-nginx acceptance and the §7 edge-CDN
  conflict priority.
* :mod:`repro.core.cloudflare` — the §7 Cloudflare customer-certificate
  filter.
* :mod:`repro.core.netflix` — the §6.2 Netflix envelope restoration
  (expired certificates, HTTP-only era).
* :mod:`repro.core.footprint_index` — the persistent
  :class:`FootprintIndex` query surface over per-snapshot footprints
  (in-memory adapter for batch results, durable on-disk store for the
  incremental ``repro serve`` path).
* :mod:`repro.core.pipeline` — the longitudinal orchestration producing
  every number the evaluation section reports, split into a pure
  per-snapshot phase and an ordered cross-snapshot merge.
* :mod:`repro.core.stages` — the per-snapshot phase itself as a typed
  stage graph with content-addressed, cacheable artifacts (the
  ``--cache-dir``/``--resume``/``--stages`` machinery).
* :mod:`repro.core.executor` — snapshot execution strategies: serial, or a
  fork-based process pool (``PipelineOptions(jobs=N)``) with bit-identical
  output.

Every stage is instrumented through :mod:`repro.obs`: the pure phase
books stage timings and funnel counters into a per-snapshot metrics
registry, the merge barrier folds the registries in snapshot order, and
``PipelineResult.report()`` emits the versioned JSON run report the CI
bench gate diffs across executors.
"""

from repro.core.candidates import find_candidates
from repro.core.cloudflare import is_cloudflare_customer_cert
from repro.core.confirm import EDGE_CDNS, confirm_candidates
from repro.core.executor import (
    ParallelExecutor,
    SerialExecutor,
    SnapshotExecutor,
    make_executor,
)
from repro.core.footprint import (
    FootprintQueries,
    FootprintSnapshot,
    PipelineResult,
    SnapshotOutcome,
)
from repro.core.footprint_index import (
    DurableFootprintIndex,
    FootprintIndex,
    IndexView,
    ResultIndex,
    index_of,
)
from repro.core.header_fingerprint import learn_header_fingerprints
from repro.core.netflix import NetflixEnvelope, restore_netflix
from repro.core.pipeline import OffnetPipeline, PipelineOptions
from repro.core.stages import (
    DiskCache,
    MemoryCache,
    NullCache,
    Stage,
    StageGraph,
    TieredCache,
    build_offnet_graph,
)
from repro.core.tls_fingerprint import TLSFingerprint, learn_tls_fingerprint
from repro.core.validation import (
    CertificateValidator,
    ValidatedRecord,
    ValidationCacheStats,
)

__all__ = [
    "CertificateValidator",
    "ValidatedRecord",
    "ValidationCacheStats",
    "TLSFingerprint",
    "learn_tls_fingerprint",
    "find_candidates",
    "learn_header_fingerprints",
    "confirm_candidates",
    "EDGE_CDNS",
    "is_cloudflare_customer_cert",
    "NetflixEnvelope",
    "restore_netflix",
    "FootprintSnapshot",
    "SnapshotOutcome",
    "PipelineResult",
    "FootprintQueries",
    "FootprintIndex",
    "ResultIndex",
    "IndexView",
    "DurableFootprintIndex",
    "index_of",
    "OffnetPipeline",
    "PipelineOptions",
    "SnapshotExecutor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "Stage",
    "StageGraph",
    "build_offnet_graph",
    "MemoryCache",
    "DiskCache",
    "TieredCache",
    "NullCache",
]
