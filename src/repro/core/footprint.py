"""Result containers for the longitudinal pipeline.

:class:`SnapshotOutcome` is the output of the *pure* per-snapshot phase:
everything a snapshot's footprint needs plus the two inputs the ordered
cross-snapshot merge consumes (the Netflix §6.2 restoration is the only
cross-snapshot state).  Outcomes are plain picklable data, which is what
lets :class:`~repro.core.executor.ParallelExecutor` compute them in worker
processes and merge them in the parent in snapshot order — bit-identical
to a sequential run.

:class:`FootprintQueries` is the longitudinal query surface every
analysis module consumes.  It is deliberately defined here (next to the
data it reads) and inherited both by :class:`PipelineResult` and by the
:class:`~repro.core.footprint_index.FootprintIndex` backends, so batch
results and persistent indexes answer the same questions identically.
Analysis code imports the surface from
:mod:`repro.core.footprint_index`; nothing outside the core should
touch ``PipelineResult.by_snapshot`` directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.validation import ValidationCacheStats, ValidationStats
from repro.net.asn import ASN
from repro.obs.metrics import MetricsRegistry
from repro.obs.timers import STAGE_SECONDS
from repro.timeline import Snapshot

__all__ = [
    "FootprintSnapshot",
    "SnapshotOutcome",
    "FootprintQueries",
    "PipelineResult",
]


@dataclass(slots=True)
class FootprintSnapshot:
    """Everything the pipeline inferred for one corpus snapshot."""

    snapshot: Snapshot
    #: Raw corpus size: IPs presenting any certificate (Fig. 2 left axis).
    raw_ip_count: int
    #: Distinct end-entity certificates in the raw corpus.
    raw_certificate_count: int
    validation: ValidationStats
    #: §4.3 candidates per HG (the "only certs" numbers).
    candidate_ips: dict[str, frozenset[int]] = field(default_factory=dict)
    candidate_ases: dict[str, frozenset[ASN]] = field(default_factory=dict)
    #: §4.5 confirmed off-nets per HG, "http or https" headers (default).
    confirmed_ips: dict[str, frozenset[int]] = field(default_factory=dict)
    confirmed_ases: dict[str, frozenset[ASN]] = field(default_factory=dict)
    #: Figure 4's stricter "http AND https" variant.
    confirmed_and_ases: dict[str, frozenset[ASN]] = field(default_factory=dict)
    #: On-net IPs per HG (learned fingerprint support, Fig. 2 dashed line).
    onnet_ips: dict[str, frozenset[int]] = field(default_factory=dict)
    #: Cloudflare candidates surviving the §7 customer-cert filter.
    cloudflare_filtered_ases: frozenset[ASN] = frozenset()
    #: Netflix variants (§6.2): candidates/confirmed including expired
    #: certificates, and ASes restored via the HTTP-only evidence.
    netflix_with_expired_ases: frozenset[ASN] = frozenset()
    netflix_restored_ases: frozenset[ASN] = frozenset()

    def hg_ip_share_onnet(self) -> float:
        """% of corpus IPs holding a HG certificate inside HG ASes."""
        if self.raw_ip_count == 0:
            return 0.0
        ips = set().union(*self.onnet_ips.values()) if self.onnet_ips else set()
        return len(ips) / self.raw_ip_count * 100.0

    def hg_ip_share_offnet(self) -> float:
        """% of corpus IPs holding a HG certificate outside HG ASes."""
        if self.raw_ip_count == 0:
            return 0.0
        ips = set().union(*self.candidate_ips.values()) if self.candidate_ips else set()
        return len(ips) / self.raw_ip_count * 100.0


@dataclass(slots=True)
class SnapshotOutcome:
    """The pure per-snapshot phase's output, before the cross-snapshot merge.

    ``footprint.netflix_restored_ases`` is left empty here; the merge phase
    fills it in snapshot order from ``netflix_seen`` / ``restorable``.
    """

    footprint: FootprintSnapshot
    #: IPs that presented a Netflix certificate (valid or expired-only) in
    #: this snapshot — the contribution to the "ever a candidate" set.
    netflix_seen: frozenset[int] = frozenset()
    #: Port-80-only IPs (answering HTTP but silent on 443) mapped to their
    #: origin ASes — restoration candidates if they ever served Netflix.
    restorable: dict[int, frozenset[ASN]] = field(default_factory=dict)
    #: Everything this snapshot measured about itself — stage timing
    #: spans, funnel counters, validation-cache deltas.  Built fresh per
    #: snapshot so the merge phase can fold worker registries in snapshot
    #: order and make ``jobs=N`` counters identical to ``jobs=1``.
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    @property
    def timings(self) -> dict[str, float]:
        """Wall-clock seconds per pipeline stage for this snapshot
        (a view over the ``stage_seconds`` histograms)."""
        return _stage_totals(self.metrics)

    @property
    def cache(self) -> ValidationCacheStats:
        """Validation-cache hit/miss deltas incurred by this snapshot
        (a view over the ``validation_cache_events`` counters)."""
        return _cache_stats(self.metrics)


class FootprintQueries:
    """The longitudinal query surface over per-snapshot footprints.

    Implementations provide ``corpus``, ``snapshots`` (ordered) and
    :meth:`at`; every derived query — counts, series, AS sets, diffs —
    is defined once here so an in-memory batch result and a durable
    on-disk index cannot drift apart.
    """

    corpus: str
    snapshots: tuple[Snapshot, ...]

    def at(self, snapshot: Snapshot) -> FootprintSnapshot:
        """The footprint snapshot for one date."""
        raise NotImplementedError

    def footprints(self) -> Iterator[FootprintSnapshot]:
        """Every footprint snapshot, in snapshot order."""
        for snapshot in self.snapshots:
            yield self.at(snapshot)

    def as_count(self, hypergiant: str, snapshot: Snapshot, metric: str = "confirmed") -> int:
        """Off-net AS count for one HG at one snapshot.

        ``metric``: ``"confirmed"`` (certs + headers, the headline numbers),
        ``"candidates"`` (certs only — Table 3's parenthesised values),
        ``"confirmed_and"`` (headers on both ports), or the Netflix
        variants ``"with_expired"`` / ``"with_expired_nontls"``.
        """
        footprint = self.at(snapshot)
        if metric == "confirmed":
            return len(footprint.confirmed_ases.get(hypergiant, ()))
        if metric == "candidates":
            return len(footprint.candidate_ases.get(hypergiant, ()))
        if metric == "confirmed_and":
            return len(footprint.confirmed_and_ases.get(hypergiant, ()))
        if metric == "with_expired":
            if hypergiant != "netflix":
                raise ValueError("the with_expired metric is Netflix-specific (§6.2)")
            return len(footprint.netflix_with_expired_ases)
        if metric == "with_expired_nontls":
            if hypergiant != "netflix":
                raise ValueError("the with_expired_nontls metric is Netflix-specific (§6.2)")
            return len(footprint.netflix_with_expired_ases | footprint.netflix_restored_ases)
        raise ValueError(f"unknown metric {metric!r}")

    def series(
        self, hypergiant: str, metric: str = "confirmed"
    ) -> list[tuple[Snapshot, int]]:
        """(snapshot, AS count) series for one HG across the corpus."""
        return [
            (snapshot, self.as_count(hypergiant, snapshot, metric))
            for snapshot in self.snapshots
        ]

    def footprint_ases(
        self, hypergiant: str, snapshot: Snapshot, metric: str = "confirmed"
    ) -> frozenset[ASN]:
        """The inferred host-AS set itself (for demographic analyses)."""
        footprint = self.at(snapshot)
        if metric == "confirmed":
            return footprint.confirmed_ases.get(hypergiant, frozenset())
        if metric == "candidates":
            return footprint.candidate_ases.get(hypergiant, frozenset())
        if metric == "confirmed_and":
            return footprint.confirmed_and_ases.get(hypergiant, frozenset())
        if metric == "envelope" and hypergiant == "netflix":
            # §6.2: "the envelope of these two lines" is Netflix's footprint.
            return (
                footprint.netflix_with_expired_ases
                | footprint.netflix_restored_ases
                | footprint.confirmed_ases.get("netflix", frozenset())
            )
        raise ValueError(f"unknown metric {metric!r}")

    def effective_footprint(self, hypergiant: str, snapshot: Snapshot) -> frozenset[ASN]:
        """The footprint the paper uses downstream: the Netflix envelope for
        Netflix, plain confirmed for everyone else."""
        if hypergiant == "netflix":
            return self.footprint_ases("netflix", snapshot, "envelope")
        return self.footprint_ases(hypergiant, snapshot, "confirmed")

    def hypergiants(self, metric: str = "confirmed") -> tuple[str, ...]:
        """HGs with a nonzero footprint anywhere in the corpus.

        ``metric`` selects the footprint table consulted: ``"confirmed"``
        (the default headline set) or ``"candidates"`` (cert-only — the
        superset Table 3 reports in parentheses)."""
        if metric not in ("confirmed", "candidates"):
            raise ValueError(f"unknown metric {metric!r}")
        seen: set[str] = set()
        for footprint in self.footprints():
            table = (
                footprint.confirmed_ases
                if metric == "confirmed"
                else footprint.candidate_ases
            )
            for hypergiant, ases in table.items():
                if ases:
                    seen.add(hypergiant)
        return tuple(sorted(seen))

    def diff(
        self,
        hypergiant: str,
        earlier: Snapshot,
        later: Snapshot,
        metric: str = "confirmed",
    ) -> tuple[frozenset[ASN], frozenset[ASN]]:
        """``(added, removed)`` host ASes for one HG between two snapshots.

        ``metric`` accepts everything :meth:`footprint_ases` does plus
        ``"effective"`` (the paper's downstream footprint choice)."""

        def ases(snapshot: Snapshot) -> frozenset[ASN]:
            if metric == "effective":
                return self.effective_footprint(hypergiant, snapshot)
            return self.footprint_ases(hypergiant, snapshot, metric)

        before, after = ases(earlier), ases(later)
        return frozenset(after - before), frozenset(before - after)


@dataclass(slots=True)
class PipelineResult(FootprintQueries):
    """The pipeline's output across a corpus's snapshots."""

    corpus: str
    snapshots: tuple[Snapshot, ...]
    by_snapshot: dict[Snapshot, FootprintSnapshot]
    #: Per-snapshot registries folded in snapshot order at the merge
    #: barrier, plus the merge stage's own span.  Excluded from equality
    #: so serial and parallel runs of the same world compare equal
    #: (timing histograms and cache-event counters legitimately differ).
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry, compare=False)
    #: How the run was produced: the pipeline options in force and the
    #: executor's self-description (jobs, workers, serial fallbacks).
    run_meta: dict = field(default_factory=dict, compare=False)

    @property
    def timings(self) -> dict[str, float]:
        """Wall-clock seconds per pipeline stage, summed over snapshots
        (the parallel executor sums worker-side timings, so this is
        CPU-style aggregate work, not elapsed time)."""
        return _stage_totals(self.metrics)

    @property
    def validation_cache(self) -> ValidationCacheStats:
        """Aggregated §4.1 validation-cache counters across snapshots."""
        return _cache_stats(self.metrics)

    def report(self) -> dict:
        """The versioned JSON-safe run report (``repro.run-report/1``) —
        see :mod:`repro.obs.report` for the schema and its deterministic
        view."""
        from repro.obs.report import build_report

        return build_report(self)

    def at(self, snapshot: Snapshot) -> FootprintSnapshot:
        """The footprint snapshot for one date."""
        return self.by_snapshot[snapshot]


def _stage_totals(metrics: MetricsRegistry) -> dict[str, float]:
    """``{stage: total seconds}`` over the ``stage_seconds`` histograms."""
    return {
        stage: histogram.total
        for stage, histogram in metrics.histograms_by_label(
            STAGE_SECONDS, "stage"
        ).items()
    }


def _cache_stats(metrics: MetricsRegistry) -> ValidationCacheStats:
    """The ``validation_cache_events`` counters as the legacy stats type."""

    def events(cache: str, event: str) -> int:
        return metrics.counter_value("validation_cache_events", cache=cache, event=event)

    return ValidationCacheStats(
        static_hits=events("static", "hit"),
        static_misses=events("static", "miss"),
        window_hits=events("window", "hit"),
        window_misses=events("window", "miss"),
    )
