"""§4.2 — learning a hypergiant's TLS fingerprint from its own on-nets.

Input: the HG keyword (e.g. ``"google"``) and the validated records of a
full TLS scan, plus the HG's own AS set (from the reverse organisation
lookup of Appendix A.2) and the IP-to-AS map.

Records whose IP maps inside the HG's address space and whose end-entity
``Subject.Organization`` contains the keyword (case-insensitively) are the
HG's on-net servers; their authenticated ``dNSNames`` form the fingerprint.
The unvalidated Organization alone is *not* trusted — that is the entire
point of collecting the dNSName set.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bgp.ip2as import IPToASMap
from repro.core.validation import ValidatedRecord
from repro.net.asn import ASN

__all__ = ["TLSFingerprint", "learn_tls_fingerprint", "organization_matches"]


def organization_matches(organization: str, keyword: str) -> bool:
    """The paper's case-insensitive keyword search in the Organization."""
    return keyword.lower() in organization.lower()


@dataclass(frozen=True, slots=True)
class TLSFingerprint:
    """A hypergiant's learned TLS fingerprint."""

    hypergiant: str
    #: The authenticated DNS names served from the HG's own address space.
    dns_names: frozenset[str]
    #: On-net IPs the fingerprint was learned from (used again in §4.4).
    onnet_ips: frozenset[int]

    @property
    def is_empty(self) -> bool:
        return not self.dns_names


def learn_tls_fingerprint(
    hypergiant: str,
    records: list[ValidatedRecord],
    hg_ases: frozenset[ASN],
    ip2as: IPToASMap,
) -> TLSFingerprint:
    """Learn the HG's fingerprint from one snapshot's validated records.

    ``hg_ases`` comes from the organisation dataset's reverse lookup
    (Appendix A.2); expired-only records never contribute (on-nets serve
    valid certificates).
    """
    names: set[str] = set()
    onnet_ips: set[int] = set()
    if not hg_ases:
        return TLSFingerprint(hypergiant, frozenset(), frozenset())
    for record in records:
        if record.expired_only:
            continue
        origins = ip2as.lookup(record.ip)
        if not origins or not (origins & hg_ases):
            continue
        if not organization_matches(record.certificate.subject.organization, hypergiant):
            continue
        onnet_ips.add(record.ip)
        names.update(name.lower() for name in record.certificate.dns_names)
    return TLSFingerprint(
        hypergiant=hypergiant,
        dns_names=frozenset(names),
        onnet_ips=frozenset(onnet_ips),
    )
