"""§4.4 — learning per-hypergiant HTTP(S) header fingerprints.

The paper inspects on-net responses in the Rapid7 header corpus (September
2020), filters common standard headers, takes the 50 most frequent header
name:value pairs and the most frequent names per HG, and then *manually*
classifies which identify the HG ("HG-specific headers were easily
identifiable either from a unique header name or value containing an
abbreviated name of the Hypergiant"; automation is left as future work).

This module performs that whole procedure, automating the manual step with
the paper's own two criteria:

1. **abbreviation match** — the name or value contains a known abbreviation
   of the HG (``fb``, ``amz``, ``cf-``, ``tengine``...), or the HG keyword
   itself;
2. **uniqueness** — the name (or the exact name:value pair) is frequent on
   this HG's on-nets and never appears in a background sample or on other
   HGs' on-nets.

The learned rules come out as :class:`~repro.hypergiants.profiles.HeaderRule`
values and can be compared directly against the curated Table 4.
"""

from __future__ import annotations

from collections import Counter

from repro.hypergiants.profiles import HeaderRule, STANDARD_HEADERS
from repro.scan.records import ScanSnapshot

__all__ = ["learn_header_fingerprints", "HG_ABBREVIATIONS"]

#: Abbreviated names per HG, as the paper's manual step recognised them.
HG_ABBREVIATIONS: dict[str, tuple[str, ...]] = {
    "google": ("google", "gws", "gvs", "x_fw_"),
    "facebook": ("facebook", "fb", "proxygen"),
    "netflix": ("netflix", "nflx", "tcp-info"),
    "akamai": ("akamai",),
    "alibaba": ("alibaba", "aliyun", "tengine", "eagleid"),
    "cloudflare": ("cloudflare", "cf-"),
    "amazon": ("amazon", "amz", "aws", "cloudfront"),
    "cdnetworks": ("cdnetworks", "pws"),
    "limelight": ("limelight", "llid", "edgeprism"),
    "apple": ("apple", "cdnuuid"),
    "twitter": ("twitter", "tsa_"),
    "microsoft": ("microsoft", "msedge"),
    "fastly": ("fastly", "x-served-by"),
    "verizon": ("verizon", "ecacc"),
    "incapsula": ("incapsula", "incap"),
    "hulu": ("hulu",),
}

#: Generic banners that must never become a fingerprint on their own.
_GENERIC_VALUES = frozenset(
    v.lower()
    for v in ("nginx", "apache", "openresty", "lighttpd", "microsoft-iis/8.5", "cloudfront")
)

_TOP_PAIRS = 50
#: A pair/name must cover at least this share of the HG's on-net responses.
_MIN_SUPPORT = 0.05
#: ...and at most this share of the background sample.
_MAX_BACKGROUND = 0.005


def _mentions_abbreviation(text: str, hypergiant: str) -> bool:
    needles = HG_ABBREVIATIONS.get(hypergiant, (hypergiant,))
    lowered = text.lower()
    return any(needle in lowered for needle in needles)


def _collect_counters(
    scan: ScanSnapshot, ips: frozenset[int]
) -> tuple[Counter, Counter, int]:
    """(name:value counter, name counter, responses) over the given IPs."""
    pair_counts: Counter = Counter()
    name_counts: Counter = Counter()
    responses = 0
    for record in scan.http_records:
        if record.ip not in ips:
            continue
        responses += 1
        for name, value in record.headers:
            lowered = name.lower()
            if lowered in STANDARD_HEADERS:
                continue
            pair_counts[(name, value)] += 1
            name_counts[name] += 1
    return pair_counts, name_counts, responses


def _common_prefix(values: list[str]) -> str:
    """Longest common prefix of a list of strings."""
    if not values:
        return ""
    shortest = min(values, key=len)
    for index, char in enumerate(shortest):
        if any(v[index] != char for v in values):
            return shortest[:index]
    return shortest


def learn_header_fingerprints(
    scan: ScanSnapshot,
    onnet_ips: dict[str, frozenset[int]],
    background_ips: frozenset[int],
) -> dict[str, tuple[HeaderRule, ...]]:
    """Learn header rules per HG from one header-corpus snapshot.

    ``onnet_ips`` maps HG key → its on-net IPs (from §4.2);
    ``background_ips`` is a sample of non-HG responsive servers used to
    reject headers that are common on the ordinary web.
    """
    background_pairs, background_names, background_total = _collect_counters(
        scan, background_ips
    )
    background_total = max(1, background_total)

    # Names seen on more than one HG's on-nets are ambiguous unless the
    # value itself names the HG (e.g. "Server" appears everywhere).
    per_hg_names: dict[str, set[str]] = {}
    collected: dict[str, tuple[Counter, Counter, int]] = {}
    for hypergiant, ips in onnet_ips.items():
        pair_counts, name_counts, total = _collect_counters(scan, ips)
        collected[hypergiant] = (pair_counts, name_counts, total)
        per_hg_names[hypergiant] = {name.lower() for name in name_counts}

    name_owners: Counter = Counter()
    for names in per_hg_names.values():
        name_owners.update(names)

    results: dict[str, tuple[HeaderRule, ...]] = {}
    for hypergiant, (pair_counts, name_counts, total) in collected.items():
        if total == 0:
            results[hypergiant] = ()
            continue
        rules: list[HeaderRule] = []
        claimed_names: set[str] = set()

        # Pass 1: constant name:value pairs among the top-50.
        for (name, value), count in pair_counts.most_common(_TOP_PAIRS):
            lowered = name.lower()
            if count / total < _MIN_SUPPORT:
                continue
            if background_pairs[(name, value)] / background_total > _MAX_BACKGROUND:
                continue
            if value.lower() in _GENERIC_VALUES:
                continue
            specific = _mentions_abbreviation(f"{name}:{value}", hypergiant)
            unique = name_owners[lowered] == 1 and lowered not in background_names
            if not (specific or unique):
                continue
            # Is the value constant, or does it share a telling prefix?
            values = [v for (n, v), c in pair_counts.items() if n == name and c > 0]
            if len(set(values)) == 1:
                rules.append(HeaderRule(name, value))
                claimed_names.add(lowered)

        # Pass 2: frequent names whose values vary (request ids, debug
        # tokens) become name-only or value-prefix rules.
        for name, count in name_counts.most_common(_TOP_PAIRS):
            lowered = name.lower()
            if lowered in claimed_names:
                continue
            if count / total < _MIN_SUPPORT:
                continue
            # Varying values with an abbreviation-bearing common prefix
            # become a value-prefix rule (``Server: gws*``).  The background
            # check applies to the *pattern*, not the bare name — ``Server``
            # is ubiquitous, ``Server: gws...`` is not.
            values = sorted(
                {v for (n, v), c in pair_counts.items() if n == name and c > 0}
            )
            if len(values) > 1:
                prefix = _common_prefix(values)
                if len(prefix) >= 3 and _mentions_abbreviation(prefix, hypergiant):
                    background_hits = sum(
                        c
                        for (n, v), c in background_pairs.items()
                        if n == name and v.startswith(prefix)
                    )
                    if background_hits / background_total <= _MAX_BACKGROUND:
                        rules.append(HeaderRule(name, prefix + "*"))
                        claimed_names.add(lowered)
                        continue
            if background_names[name] / background_total > _MAX_BACKGROUND:
                continue
            specific = _mentions_abbreviation(name, hypergiant)
            unique = name_owners[lowered] == 1 and name not in background_names
            if specific or unique:
                rules.append(HeaderRule(name, None))
                claimed_names.add(lowered)

        results[hypergiant] = tuple(rules)
    return results
