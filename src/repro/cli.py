"""Command-line interface: ``python -m repro <command>``.

Commands::

    python -m repro run        --seed 7 --scale 0.02            # Table 3
    python -m repro run        --dir out/ --corpus rapid7       # ... from files
    python -m repro run        --jobs 4 --report run.json       # + run report
    python -m repro validate   --seed 7 --scale 0.02            # §5 checks
    python -m repro coverage   --hypergiant google              # §6.5
    python -m repro growth     --hypergiant netflix             # Fig. 3 series
    python -m repro dump       --snapshot 2019-10 --out r7.jsonl
    python -m repro export     --dir out/ --format columnar     # binary corpora
    python -m repro serve      --dir out/ --state-dir idx/      # query daemon
    python -m repro query      --state-dir idx/ --endpoint hypergiants
    python -m repro scenario list                               # named worlds
    python -m repro scenario run --name flash-crowd             # eventful run
    python -m repro scenario assess --name skewed               # realism score

``dump`` and ``export`` take ``--format`` to pick the corpus codec; the
accepted names come from the codec registry
(:func:`repro.datasets.formats.format_names`), so a newly registered
format shows up in ``--help`` without touching the CLI.  Readers
autodetect the format from file content, so ``run --dir`` needs no flag
either way.

``run`` and ``serve`` take the §4.5 confirmation configuration:
``--signals`` names the confirmation signals to run, in priority order,
from the signal registry (:func:`repro.core.signals.signal_names`), and
``--confirm-policy`` picks how their verdicts fold
(``paper-default``/``require-<k>``/``priority`` —
:mod:`repro.core.signals.policy`).  The defaults reproduce the paper's
header-only confirmation bit for bit.

Every world-backed command builds the same deterministic world from
``--seed``/``--scale``; ``run --dir`` drives the identical pipeline from an
exported dataset directory instead (``run-files`` is the legacy spelling).

Global options are accepted before *or* after the subcommand:

* ``--seed`` / ``--scale`` — world determinism and size;
* ``--jobs N`` — run the pure per-snapshot pipeline phase across N worker
  processes (:mod:`repro.core.executor`); ``--jobs 0`` auto-sizes to one
  worker per CPU core.  The cross-snapshot merge is an ordered reduction,
  so any ``--jobs`` value prints identical numbers; N > 1 simply uses
  more cores.

``run`` additionally takes ``--header-learning-snapshot YYYY-MM`` (§4.4):
by default the paper's September 2020 corpus is used, falling back to a
file dataset's last covered snapshot when 2020-10 was not exported.

The per-snapshot phase is a cached stage graph (:mod:`repro.core.stages`);
``run`` exposes it directly:

* ``--cache-dir DIR`` — persist stage artifacts on disk; a second run
  reuses every artifact whose inputs, options, and stage code are
  unchanged (an ablation flip recomputes only the invalidated suffix);
* ``--resume`` — report which artifacts an interrupted run left behind in
  ``--cache-dir``, then complete the run from them;
* ``--stages a,b`` — force only the named stages (plus dependencies), e.g.
  to warm a cache or debug a subgraph; ``--stages list`` prints the graph.

File-backed runs also take the ingestion robustness flags
(:mod:`repro.robustness`):

* ``--on-error strict|lenient|repair`` — fail fast with position info
  (default), quarantine bad records and infer from the survivors, or
  additionally apply deterministic repairs;
* ``--quarantine-dir DIR`` — persist quarantined records as JSONL, one
  file per corpus snapshot.

``scenario`` drives the scenario engine (:mod:`repro.scenario`): ``list``
and ``describe`` browse the named-scenario registry, ``run`` builds a
named spec's world (mid-timeline events included) and runs the full
pipeline over it, and ``assess`` scores the built world against the
paper's distributions (the same scorer as ``tools/assess_realism.py``).
Unlike the other subcommands, ``scenario`` resolves ``--seed``/``--scale``
from the *spec* when the flags are not given after the verb — pass them
after the verb (``repro scenario run --name toy --seed 11``) to override.

``serve`` keeps a persistent :mod:`repro.serve` footprint index in
``--state-dir`` in sync with ``--dir`` (only new or changed snapshots
are re-analysed) and answers concurrent HTTP queries; ``query`` is its
client, finding the daemon via ``--state-dir`` or an explicit ``--url``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import build_table3, render_table
from repro.analysis.coverage import country_coverage, worldwide_coverage
from repro.core import OffnetPipeline, PipelineOptions, restore_netflix
from repro.core.signals import policy_names, signal_names
from repro.hypergiants.profiles import TOP4
from repro.datasets.formats import format_names, get_format
from repro.robustness import CorpusParseError
from repro.timeline import Snapshot
from repro.validation import survey_hypergiant
from repro.world import WorldConfig, build_world

__all__ = ["main", "build_parser"]

#: The §4.4 learning snapshot (the paper's September 2020 Rapid7 corpus).
PAPER_LEARNING_SNAPSHOT = PipelineOptions().header_learning_snapshot


def _add_globals(parser: argparse.ArgumentParser, top_level: bool = False) -> None:
    """``--seed``/``--scale``/``--jobs``, valid before and after the
    subcommand.  The top-level parser holds the real defaults; subcommand
    copies use ``SUPPRESS`` so they only override when given."""

    def default(value):
        return value if top_level else argparse.SUPPRESS

    parser.add_argument(
        "--seed", type=int, default=default(7), help="world seed (default 7)"
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=default(0.02),
        help="Internet scale factor (default 0.02)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=default(1),
        metavar="N",
        help="worker processes for the per-snapshot phase (default 1; "
        "0 = one worker per CPU core; output is identical for any N)",
    )


def _add_confirm_arguments(parser: argparse.ArgumentParser) -> None:
    """The §4.5 confirmation flags shared by ``run`` and ``serve``."""
    parser.add_argument(
        "--signals",
        default=None,
        metavar="A,B",
        help="comma-separated confirmation signals for the §4.5 confirm "
        f"stage, in priority order (registered: {', '.join(signal_names())}; "
        "default: header — the paper's methodology); changing the set "
        "re-keys the cached confirm artifacts",
    )
    parser.add_argument(
        "--confirm-policy",
        default=None,
        metavar="POLICY",
        help="how signal verdicts fold into a confirmation "
        f"({', '.join(policy_names())}; default: paper-default — the "
        "header signal decides, bit-identical to the pre-framework "
        "behaviour)",
    )


def _add_run_arguments(parser: argparse.ArgumentParser, dir_required: bool) -> None:
    """The shared ``run``/``run-files`` argument set."""
    _add_globals(parser)
    _add_confirm_arguments(parser)
    parser.add_argument(
        "--dir",
        required=dir_required,
        default=None,
        help="run from an exported dataset directory instead of a synthetic world",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        help="corpus to analyse (default: rapid7, or a dataset's first corpus)",
    )
    parser.add_argument(
        "--header-learning-snapshot",
        default=None,
        metavar="YYYY-MM",
        help="§4.4 header-learning snapshot (default: the paper's 2020-10 "
        "when covered, else a file dataset's last snapshot)",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        metavar="N",
        help="snapshots per worker shard for parallel runs (default: "
        "cost-balance the snapshots into --jobs contiguous shards, "
        "probing per-file ingest cost from corpus headers); output is "
        "identical for any shard geometry",
    )
    parser.add_argument(
        "--report",
        default=None,
        metavar="OUT.json",
        help="also write the versioned JSON run report (schema "
        "repro.run-report/1: per-stage timings, per-snapshot funnel "
        "counts, cache stats, executor metadata); identical funnel for "
        "any --jobs value — tools/check_report.py diffs two reports",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persist stage artifacts under DIR (content-addressed; a "
        "re-run reuses every artifact whose inputs and options are "
        "unchanged; output is identical with or without a cache)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="report what an interrupted run left in --cache-dir, then "
        "complete the run from those artifacts (requires --cache-dir)",
    )
    parser.add_argument(
        "--stages",
        default=None,
        metavar="A,B|list",
        help="force only the named pipeline stages (plus dependencies) "
        "instead of a full run — warms a cache or debugs a subgraph; "
        "'list' prints the stage graph and exits",
    )
    parser.add_argument(
        "--on-error",
        default="strict",
        choices=("strict", "lenient", "repair"),
        help="how corpus ingestion handles malformed records (requires "
        "--dir for non-strict modes): strict fails fast with the "
        "file/line/byte-offset of the first bad record; lenient "
        "quarantines bad records and infers from the survivors; repair "
        "additionally fixes mechanically-repairable records "
        "(stringified IPs, missing ports, re-defined chains)",
    )
    parser.add_argument(
        "--quarantine-dir",
        default=None,
        metavar="DIR",
        help="write quarantined records as JSONL under DIR, one file per "
        "corpus snapshot (offending line + error class + position); "
        "only meaningful with --on-error=lenient|repair — counts reach "
        "the run report's ingest section either way",
    )


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Seven Years in the Life of Hypergiants' Off-Nets'",
    )
    _add_globals(parser, top_level=True)
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser(
        "run", help="run the pipeline and print the Table 3 footprints"
    )
    _add_run_arguments(run, dir_required=False)

    validate = sub.add_parser(
        "validate", help="survey-style validation against ground truth"
    )
    _add_globals(validate)

    coverage = sub.add_parser("coverage", help="user-population coverage (§6.5)")
    _add_globals(coverage)
    coverage.add_argument("--hypergiant", default="google")
    coverage.add_argument(
        "--cones", action="store_true", help="also serve hosting ASes' customer cones"
    )

    growth = sub.add_parser("growth", help="off-net AS growth series (Fig. 3)")
    _add_globals(growth)
    growth.add_argument("--hypergiant", default="google")

    dump = sub.add_parser("dump", help="write one scan snapshot to a corpus file")
    _add_globals(dump)
    dump.add_argument("--corpus", default="rapid7", choices=("rapid7", "censys", "certigo"))
    dump.add_argument("--snapshot", default="2019-10", help="YYYY-MM")
    dump.add_argument("--out", required=True, help="output path")
    dump.add_argument(
        "--format",
        default="jsonl",
        choices=format_names(),
        help="corpus codec to write, from the format registry "
        f"(registered: {', '.join(format_names())}; default: jsonl)",
    )

    export = sub.add_parser(
        "export", help="export corpuses + support datasets to a directory"
    )
    _add_globals(export)
    export.add_argument("--dir", required=True, help="output directory")
    export.add_argument(
        "--corpus", action="append", default=None, help="corpus name (repeatable)"
    )
    export.add_argument(
        "--snapshot", action="append", default=None, help="YYYY-MM (repeatable; default all)"
    )
    export.add_argument(
        "--format",
        default="jsonl",
        choices=format_names(),
        help="corpus codec for the exported snapshot files, from the "
        f"format registry (registered: {', '.join(format_names())}; "
        "default: jsonl)",
    )

    run_files = sub.add_parser(
        "run-files", help="legacy alias for `run --dir DIR`"
    )
    _add_run_arguments(run_files, dir_required=True)

    serve = sub.add_parser(
        "serve",
        help="watch a dataset dir, keep a persistent footprint index "
        "current, and answer HTTP queries",
    )
    _add_globals(serve)
    _add_confirm_arguments(serve)
    serve.add_argument(
        "--dir", required=True, help="exported dataset directory to watch"
    )
    serve.add_argument(
        "--state-dir",
        required=True,
        help="where the persistent footprint index lives (created on "
        "first run; later runs resume it and ingest only deltas)",
    )
    serve.add_argument(
        "--corpus",
        default=None,
        help="corpus to index (default: the dataset's first corpus)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="bind port (default 0 = an ephemeral port, written to "
        "endpoint.json in --state-dir)",
    )
    serve.add_argument(
        "--poll-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="how often the watcher re-scans --dir for new or changed "
        "snapshots (default 2.0)",
    )
    serve.add_argument(
        "--once",
        action="store_true",
        help="run a single delta-ingest pass, print what changed, and "
        "exit without serving (cron-style index updates)",
    )
    serve.add_argument(
        "--header-learning-snapshot",
        default=None,
        metavar="YYYY-MM",
        help="§4.4 header-learning snapshot (default: the paper's "
        "2020-10 when covered, else the dataset's last snapshot)",
    )
    serve.add_argument(
        "--on-error",
        default="strict",
        choices=("strict", "lenient", "repair"),
        help="ingestion policy for corpus files the watcher picks up; a "
        "snapshot that still fails to parse is reported and left out "
        "of the index while the rest keep serving",
    )
    serve.add_argument(
        "--quarantine-dir",
        default=None,
        metavar="DIR",
        help="write records quarantined during serve-side ingestion as "
        "JSONL under DIR (same layout as the batch run's)",
    )

    scenario = sub.add_parser(
        "scenario",
        help="scenario engine: list/describe named worlds, run one through "
        "the pipeline, or score its realism",
    )
    scenario.add_argument(
        "verb",
        choices=("list", "describe", "run", "assess"),
        help="list the registry, describe one spec, run its world through "
        "the pipeline, or score the built world against the paper's "
        "distributions",
    )
    scenario.add_argument(
        "--name",
        default="paper-default",
        help="scenario name from the registry (default: paper-default; "
        "see `repro scenario list`)",
    )
    # Unlike the shared globals, None (not SUPPRESS) is deliberate here:
    # "flag not given" must stay observable so the spec's own defaults
    # decide — `scenario run --name toy` builds at the toy scale.
    scenario.add_argument(
        "--seed",
        type=int,
        default=None,
        help="world seed (default: the scenario's own default)",
    )
    scenario.add_argument(
        "--scale",
        type=float,
        default=None,
        help="Internet scale factor (default: the scenario's own default)",
    )
    scenario.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the run verb (default 1; output is "
        "identical for any N, events included)",
    )
    scenario.add_argument(
        "--corpus",
        default=None,
        help="corpus the run verb analyses (default: rapid7)",
    )
    scenario.add_argument(
        "--report",
        default=None,
        metavar="OUT.json",
        help="run verb: also write the versioned run report (its "
        "`scenario` section carries the event schedule and suppression "
        "counters)",
    )
    scenario.add_argument(
        "--out",
        default=None,
        metavar="OUT.json",
        help="assess verb: also write the repro.realism-report/1 JSON "
        "(what CI's realism gate consumes)",
    )

    query = sub.add_parser(
        "query", help="query a running serve daemon and print the JSON answer"
    )
    _add_globals(query)
    query.add_argument(
        "--url",
        default=None,
        help="daemon base URL (default: discovered from --state-dir)",
    )
    query.add_argument(
        "--state-dir",
        default=None,
        help="serve state directory to discover the daemon from "
        "(reads its endpoint.json)",
    )
    query.add_argument(
        "--endpoint",
        default="status",
        choices=("status", "metrics", "hypergiants", "series", "footprint",
                 "diff", "slice"),
        help="which query to run (default: status)",
    )
    query.add_argument("--hg", default=None, help="hypergiant key, e.g. google")
    query.add_argument(
        "--metric",
        default=None,
        help="footprint metric (confirmed, candidates, confirmed_and, "
        "effective, or the Netflix §6.2 variants)",
    )
    query.add_argument("--snapshot", default=None, metavar="YYYY-MM")
    query.add_argument(
        "--from",
        dest="from_snapshot",
        default=None,
        metavar="YYYY-MM",
        help="earlier snapshot for --endpoint diff",
    )
    query.add_argument(
        "--to",
        dest="to_snapshot",
        default=None,
        metavar="YYYY-MM",
        help="later snapshot for --endpoint diff",
    )
    query.add_argument(
        "--by",
        default=None,
        choices=("country", "as"),
        help="slice dimension for --endpoint slice",
    )
    query.add_argument(
        "--asn", default=None, help="AS number for --endpoint slice --by as"
    )
    return parser


def _world(args: argparse.Namespace):
    return build_world(config=WorldConfig(seed=args.seed, scale=args.scale))


def _confirm_overrides(args: argparse.Namespace) -> dict:
    """The §4.5 PipelineOptions overrides ``--signals``/``--confirm-policy``
    asked for (empty when neither was given, keeping the dataclass
    defaults in charge).  Validation stays in PipelineOptions, the single
    authority on signal names and policy specs."""
    overrides: dict = {}
    if args.signals:
        overrides["signals"] = tuple(
            name.strip() for name in args.signals.split(",") if name.strip()
        )
    if args.confirm_policy:
        overrides["confirm_policy"] = args.confirm_policy
    return overrides


def _dataset_context(directory: str, corpus: str | None):
    """Resolve a file dataset the way every file-backed command does:
    open it, pick the corpus (first manifest entry unless named), and
    choose the §4.4 learning-snapshot fallback — the paper's 2020-10
    corpus when covered, else the dataset's last snapshot (never a
    silent substitute when one was requested explicitly).

    Returns ``(source, corpus, fallback_learning_snapshot)``.
    """
    from repro.datasets import FileDataset

    source = FileDataset(directory)
    corpus = corpus or next(iter(source.manifest["corpora"]))
    covered = source.corpus_snapshots(corpus)
    fallback = (
        PAPER_LEARNING_SNAPSHOT
        if PAPER_LEARNING_SNAPSHOT in covered
        else covered[-1]
    )
    return source, corpus, fallback


def _cmd_run(args: argparse.Namespace) -> int:
    """One code path for `run` and `run-files`: build a DataSource (world
    or file dataset), pick the §4.4 learning snapshot, run, print Table 3."""
    directory = getattr(args, "dir", None)
    if args.resume and not args.cache_dir:
        print("--resume needs --cache-dir (there is nothing to resume from)")
        return 2
    if not directory and (args.on_error != "strict" or args.quarantine_dir):
        print(
            "--on-error/--quarantine-dir need --dir: synthetic worlds build "
            "snapshots in memory, so there are no corpus files to quarantine"
        )
        return 2
    overrides: dict = {
        "jobs": args.jobs,
        "shard_size": args.shard_size,
        "cache_dir": args.cache_dir,
        "on_error": args.on_error,
        "quarantine_dir": args.quarantine_dir,
        **_confirm_overrides(args),
    }
    if directory:
        source, corpus, fallback = _dataset_context(directory, args.corpus)
        title = f"Off-net footprints from {directory} ({corpus})"
    else:
        source = _world(args)
        corpus = args.corpus or "rapid7"
        fallback = PAPER_LEARNING_SNAPSHOT
        title = f"Off-net footprints (seed={args.seed}, scale={args.scale})"
    if args.header_learning_snapshot:
        learning = Snapshot.parse(args.header_learning_snapshot)
    else:
        learning = fallback
    try:
        options = PipelineOptions(
            corpus=corpus, header_learning_snapshot=learning, **overrides
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    pipeline = OffnetPipeline(source, options)
    if args.stages:
        return _run_stages_only(pipeline, args.stages)
    if args.resume:
        _print_resume_probe(pipeline)
    try:
        result = pipeline.run()
    except CorpusParseError as error:
        print(f"corpus ingestion failed: {error}")
        print("hint: --on-error=lenient quarantines bad records and keeps going")
        return 1
    quarantined = result.metrics.sum_counters("ingest_quarantined")
    repaired = result.metrics.sum_counters("ingest_repaired")
    if quarantined or repaired:
        where = f"; quarantine files under {args.quarantine_dir}" if args.quarantine_dir else ""
        print(
            f"ingestion: quarantined {quarantined} and repaired {repaired} "
            f"records under --on-error={args.on_error}{where}"
        )
    rows = build_table3(result)
    first, last = result.snapshots[0], result.snapshots[-1]
    print(
        render_table(
            ["Hypergiant", f"{first} (certs)", "max [when]", f"{last} (certs)"],
            [row.format() for row in rows],
            title=title,
        )
    )
    if args.report:
        from repro.obs.report import write_report

        path = write_report(result.report(), args.report)
        stages = result.timings
        print(
            f"wrote run report to {path} "
            f"({len(result.snapshots)} snapshots, "
            f"{sum(stages.values()):.2f}s total stage time)"
        )
    return 0


def _run_stages_only(pipeline: OffnetPipeline, spec: str) -> int:
    """``--stages``: print the graph (``list``) or force a subgraph."""
    if spec.strip().lower() == "list":
        rows = [
            (
                stage["name"],
                ",".join(stage["deps"]) or "-",
                ",".join(stage["options"]) or "-",
                ("heavy" if stage["heavy"] else "light")
                if stage["cacheable"]
                else "uncached",
                stage["produces"],
            )
            for stage in pipeline.describe_stages()
        ]
        print(
            render_table(
                ["stage", "deps", "options", "artifact", "produces"],
                rows,
                title="Per-snapshot stage graph",
            )
        )
        return 0
    targets = tuple(name.strip() for name in spec.split(",") if name.strip())
    try:
        metrics = pipeline.run_stages(targets)
    except KeyError as error:
        print(f"error: {error.args[0]}")
        return 2
    events = metrics.counters_by_label("stage_cache_events", "event")
    timings = {
        stage: histogram.total
        for stage, histogram in metrics.histograms_by_label(
            "stage_seconds", "stage"
        ).items()
    }
    print(
        f"forced stages {', '.join(targets)} over "
        f"{len(pipeline.select_snapshots())} snapshots: "
        f"{events.get('hit', 0)} cache hits, {events.get('miss', 0)} misses, "
        f"{sum(timings.values()):.2f}s stage time"
    )
    return 0


def _print_resume_probe(pipeline: OffnetPipeline) -> None:
    """``--resume``: say what the cache already holds before running."""
    probe = pipeline.probe_cache()
    total = len(probe)
    complete = sum(
        1
        for stages in probe.values()
        if all(stages[name] for name in ("ingest", "vstats", "onnet",
                                         "candidates", "confirm", "netflix"))
    )
    partial = sum(
        1
        for stages in probe.values()
        if any(stages.values()) and stages not in ({},)
    ) - complete
    print(
        f"resume: {complete}/{total} snapshots fully cached, "
        f"{max(partial, 0)} partially; recomputing the rest"
    )


def _cmd_validate(args: argparse.Namespace) -> int:
    world = _world(args)
    result = OffnetPipeline(world, PipelineOptions(jobs=args.jobs)).run()
    end = result.snapshots[-1]
    rows = []
    for hypergiant in TOP4:
        report = survey_hypergiant(result, world, hypergiant, end)
        rows.append(
            (
                hypergiant,
                report.inferred,
                report.actual,
                f"{report.recall * 100:.1f}%",
                f"{report.false_fraction * 100:.1f}%",
                report.grade,
            )
        )
    print(
        render_table(
            ["HG", "inferred", "actual", "recall", "false", "grade"],
            rows,
            title="Survey validation (paper: 89-95% recall)",
        )
    )
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    world = _world(args)
    result = OffnetPipeline(world, PipelineOptions(jobs=args.jobs)).run()
    end = result.snapshots[-1]
    per_country = country_coverage(result, world.topology, args.hypergiant, end)
    rows = sorted(per_country.items(), key=lambda kv: -kv[1])
    print(
        render_table(
            ["country", "% users covered"],
            [(code, f"{value:.1f}") for code, value in rows],
            title=f"{args.hypergiant} coverage at {end}",
        )
    )
    total = worldwide_coverage(
        result, world.topology, args.hypergiant, end, include_cones=args.cones
    )
    suffix = " (serving customer cones)" if args.cones else ""
    print(f"\nworldwide: {total:.1f}%{suffix}")
    return 0


def _cmd_growth(args: argparse.Namespace) -> int:
    world = _world(args)
    result = OffnetPipeline(world, PipelineOptions(jobs=args.jobs)).run()
    if args.hypergiant == "netflix":
        envelope = restore_netflix(result)
        rows = [
            (s.label, raw, expired, nontls)
            for s, raw, expired, nontls in zip(
                result.snapshots,
                envelope.initial,
                envelope.with_expired,
                envelope.with_expired_nontls,
            )
        ]
        print(
            render_table(
                ["snapshot", "initial", "w/ expired", "w/ expired, non-tls"],
                rows,
                title="Netflix off-net growth (Fig. 3 envelope)",
            )
        )
        return 0
    rows = [(s.label, count) for s, count in result.series(args.hypergiant)]
    print(
        render_table(
            ["snapshot", "#ASes"], rows, title=f"{args.hypergiant} off-net growth"
        )
    )
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    world = _world(args)
    snapshot = Snapshot.parse(args.snapshot)
    scan = world.scan(args.corpus, snapshot)
    get_format(args.format).write(scan, args.out)
    print(
        f"wrote {args.out}: {scan.ip_count} IPs, "
        f"{scan.unique_certificates()} unique certificates"
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.datasets import export_dataset

    world = _world(args)
    corpora = tuple(args.corpus) if args.corpus else ("rapid7",)
    snapshots = (
        tuple(Snapshot.parse(label) for label in args.snapshot) if args.snapshot else None
    )
    directory = export_dataset(
        world,
        args.dir,
        corpora=corpora,
        snapshots=snapshots,
        corpus_format=args.format,
    )
    print(f"exported {', '.join(corpora)} to {directory} ({args.format})")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``serve``: keep the --state-dir index synced with --dir and (unless
    --once) answer HTTP queries until interrupted."""
    import time as _time

    from repro.serve import ServeDaemon

    _, corpus, fallback = _dataset_context(args.dir, args.corpus)
    learning = (
        Snapshot.parse(args.header_learning_snapshot)
        if args.header_learning_snapshot
        else fallback
    )
    try:
        options = PipelineOptions(
            corpus=corpus,
            header_learning_snapshot=learning,
            jobs=args.jobs,
            on_error=args.on_error,
            quarantine_dir=args.quarantine_dir,
            **_confirm_overrides(args),
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    daemon = ServeDaemon(
        args.dir,
        args.state_dir,
        options=options,
        host=args.host,
        port=args.port,
        poll_interval=args.poll_interval,
    )
    if args.once:
        report = daemon.ingest_now()
        summary = report.to_dict()
        print(
            f"index {args.state_dir} ({corpus}): "
            f"ingested {len(summary['ingested'])}, "
            f"skipped {len(summary['skipped'])} unchanged, "
            f"removed {len(summary['removed'])}, "
            f"failed {len(summary['failed'])} "
            f"in {summary['duration_seconds']:.2f}s"
        )
        for label in summary["failed"]:
            print(f"  failed: {label} (left out of the index)")
        return 1 if summary["failed"] else 0
    url = daemon.start()
    print(f"serving {corpus} from {args.dir} at {url} (state: {args.state_dir})")
    print("endpoints: /status /metrics /hypergiants /series /footprint /diff /slice")
    try:
        while True:
            _time.sleep(3600)
    except KeyboardInterrupt:
        print("stopping")
    finally:
        daemon.stop()
    return 0


def _cmd_scenario(args: argparse.Namespace) -> int:
    """``scenario``: browse the registry, run a named world, or score it."""
    from repro.scenario import assess_world, get_scenario, scenario_names

    if args.verb == "list":
        rows = [
            (
                spec.name,
                spec.description,
                len(spec.events) or "-",
                spec.paper_ref or "-",
            )
            for spec in (get_scenario(name) for name in scenario_names())
        ]
        print(
            render_table(
                ["scenario", "description", "events", "paper"],
                rows,
                title="Registered scenarios (repro scenario describe --name X)",
            )
        )
        return 0
    try:
        spec = get_scenario(args.name)
    except KeyError as error:
        print(f"error: {error.args[0]}")
        return 2
    if args.verb == "describe":
        print(spec.describe())
        return 0
    world = spec.build(seed=args.seed, scale=args.scale)
    if args.verb == "assess":
        report = assess_world(world)
        for metric in report["metrics"]:
            low, high = metric["band"]
            flag = "ok  " if metric["ok"] else "FLAG"
            print(
                f"{flag} {metric['name']:<24} {metric['value']:<8g} "
                f"band [{low:g}, {high:g}]  ({metric['paper_ref']})"
            )
        verdict = "realistic" if report["realistic"] else "UNREALISTIC"
        print(
            f"{spec.name}: {verdict} — {report['passed']}/{report['total']} "
            f"metrics inside their paper bands"
        )
        if args.out:
            import json as _json
            from pathlib import Path as _Path

            path = _Path(args.out)
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                _json.dumps(report, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"wrote realism report to {path}")
        return 0
    # run
    try:
        options = PipelineOptions(
            corpus=args.corpus or "rapid7", jobs=1 if args.jobs is None else args.jobs
        )
    except ValueError as error:
        print(f"error: {error}")
        return 2
    result = OffnetPipeline(world, options).run()
    rows = build_table3(result)
    first, last = result.snapshots[0], result.snapshots[-1]
    config = world.config
    print(
        render_table(
            ["Hypergiant", f"{first} (certs)", "max [when]", f"{last} (certs)"],
            [row.format() for row in rows],
            title=f"Scenario '{spec.name}' footprints "
            f"(seed={config.seed}, scale={config.scale})",
        )
    )
    overlay = world.event_overlay
    if overlay is not None:
        print("\nscheduled events:")
        for event in overlay.events:
            print(f"  {event.describe()}")
    if args.report:
        from repro.obs.report import write_report

        path = write_report(result.report(), args.report)
        print(f"wrote run report to {path} (see its 'scenario' section)")
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    """``query``: one GET against a running daemon, JSON to stdout."""
    import json as _json

    from repro.serve import query_server, server_url

    if not args.url and not args.state_dir:
        print("query needs --url or --state-dir to find the daemon")
        return 2
    try:
        url = args.url or server_url(args.state_dir)
    except FileNotFoundError as error:
        print(str(error))
        return 1
    params = {
        key: value
        for key, value in (
            ("hg", args.hg),
            ("metric", args.metric),
            ("snapshot", args.snapshot),
            ("from", args.from_snapshot),
            ("to", args.to_snapshot),
            ("by", args.by),
            ("asn", args.asn),
        )
        if value is not None
    }
    body = query_server(url, args.endpoint, params)
    print(_json.dumps(body, indent=2, sort_keys=True))
    return 1 if "error" in body else 0


_COMMANDS = {
    "run": _cmd_run,
    "validate": _cmd_validate,
    "coverage": _cmd_coverage,
    "growth": _cmd_growth,
    "dump": _cmd_dump,
    "export": _cmd_export,
    "run-files": _cmd_run,
    "serve": _cmd_serve,
    "query": _cmd_query,
    "scenario": _cmd_scenario,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
