"""Command-line interface: ``python -m repro <command>``.

Commands::

    python -m repro run        --seed 7 --scale 0.02            # Table 3
    python -m repro validate   --seed 7 --scale 0.02            # §5 checks
    python -m repro coverage   --hypergiant google              # §6.5
    python -m repro growth     --hypergiant netflix             # Fig. 3 series
    python -m repro dump       --snapshot 2019-10 --out r7.jsonl

Every command builds the same deterministic world from ``--seed``/``--scale``
and runs the relevant slice of the pipeline.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import build_table3, render_table
from repro.analysis.coverage import country_coverage, worldwide_coverage
from repro.core import OffnetPipeline, restore_netflix
from repro.hypergiants.profiles import TOP4
from repro.scan.corpus import save_snapshot
from repro.timeline import Snapshot
from repro.validation import survey_hypergiant
from repro.world import WorldConfig, build_world

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The argparse parser for every subcommand."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Seven Years in the Life of Hypergiants' Off-Nets'",
    )
    parser.add_argument("--seed", type=int, default=7, help="world seed (default 7)")
    parser.add_argument(
        "--scale", type=float, default=0.02, help="Internet scale factor (default 0.02)"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("run", help="run the pipeline and print the Table 3 footprints")

    sub.add_parser("validate", help="survey-style validation against ground truth")

    coverage = sub.add_parser("coverage", help="user-population coverage (§6.5)")
    coverage.add_argument("--hypergiant", default="google")
    coverage.add_argument(
        "--cones", action="store_true", help="also serve hosting ASes' customer cones"
    )

    growth = sub.add_parser("growth", help="off-net AS growth series (Fig. 3)")
    growth.add_argument("--hypergiant", default="google")

    dump = sub.add_parser("dump", help="write one scan snapshot as JSONL")
    dump.add_argument("--corpus", default="rapid7", choices=("rapid7", "censys", "certigo"))
    dump.add_argument("--snapshot", default="2019-10", help="YYYY-MM")
    dump.add_argument("--out", required=True, help="output path")

    export = sub.add_parser(
        "export", help="export corpuses + support datasets to a directory"
    )
    export.add_argument("--dir", required=True, help="output directory")
    export.add_argument(
        "--corpus", action="append", default=None, help="corpus name (repeatable)"
    )
    export.add_argument(
        "--snapshot", action="append", default=None, help="YYYY-MM (repeatable; default all)"
    )

    run_files = sub.add_parser(
        "run-files", help="run the pipeline from an exported dataset directory"
    )
    run_files.add_argument("--dir", required=True, help="dataset directory")
    run_files.add_argument("--corpus", default=None, help="corpus to analyse")
    return parser


def _world(args: argparse.Namespace):
    return build_world(config=WorldConfig(seed=args.seed, scale=args.scale))


def _cmd_run(args: argparse.Namespace) -> int:
    world = _world(args)
    result = OffnetPipeline.for_world(world).run()
    rows = build_table3(result)
    print(
        render_table(
            ["Hypergiant", "2013-10 (certs)", "max [when]", "2021-04 (certs)"],
            [row.format() for row in rows],
            title=f"Off-net footprints (seed={args.seed}, scale={args.scale})",
        )
    )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    world = _world(args)
    result = OffnetPipeline.for_world(world).run()
    end = result.snapshots[-1]
    rows = []
    for hypergiant in TOP4:
        report = survey_hypergiant(result, world, hypergiant, end)
        rows.append(
            (
                hypergiant,
                report.inferred,
                report.actual,
                f"{report.recall * 100:.1f}%",
                f"{report.false_fraction * 100:.1f}%",
                report.grade,
            )
        )
    print(
        render_table(
            ["HG", "inferred", "actual", "recall", "false", "grade"],
            rows,
            title="Survey validation (paper: 89-95% recall)",
        )
    )
    return 0


def _cmd_coverage(args: argparse.Namespace) -> int:
    world = _world(args)
    result = OffnetPipeline.for_world(world).run()
    end = result.snapshots[-1]
    per_country = country_coverage(result, world.topology, args.hypergiant, end)
    rows = sorted(per_country.items(), key=lambda kv: -kv[1])
    print(
        render_table(
            ["country", "% users covered"],
            [(code, f"{value:.1f}") for code, value in rows],
            title=f"{args.hypergiant} coverage at {end}",
        )
    )
    total = worldwide_coverage(
        result, world.topology, args.hypergiant, end, include_cones=args.cones
    )
    suffix = " (serving customer cones)" if args.cones else ""
    print(f"\nworldwide: {total:.1f}%{suffix}")
    return 0


def _cmd_growth(args: argparse.Namespace) -> int:
    world = _world(args)
    result = OffnetPipeline.for_world(world).run()
    if args.hypergiant == "netflix":
        envelope = restore_netflix(result)
        rows = [
            (s.label, raw, expired, nontls)
            for s, raw, expired, nontls in zip(
                result.snapshots,
                envelope.initial,
                envelope.with_expired,
                envelope.with_expired_nontls,
            )
        ]
        print(
            render_table(
                ["snapshot", "initial", "w/ expired", "w/ expired, non-tls"],
                rows,
                title="Netflix off-net growth (Fig. 3 envelope)",
            )
        )
        return 0
    rows = [(s.label, count) for s, count in result.series(args.hypergiant)]
    print(
        render_table(
            ["snapshot", "#ASes"], rows, title=f"{args.hypergiant} off-net growth"
        )
    )
    return 0


def _cmd_dump(args: argparse.Namespace) -> int:
    world = _world(args)
    snapshot = Snapshot.parse(args.snapshot)
    scan = world.scan(args.corpus, snapshot)
    save_snapshot(scan, args.out)
    print(
        f"wrote {args.out}: {scan.ip_count} IPs, "
        f"{scan.unique_certificates()} unique certificates"
    )
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.datasets import export_dataset

    world = _world(args)
    corpora = tuple(args.corpus) if args.corpus else ("rapid7",)
    snapshots = (
        tuple(Snapshot.parse(label) for label in args.snapshot) if args.snapshot else None
    )
    directory = export_dataset(world, args.dir, corpora=corpora, snapshots=snapshots)
    print(f"exported {', '.join(corpora)} to {directory}")
    return 0


def _cmd_run_files(args: argparse.Namespace) -> int:
    from repro.core import PipelineOptions
    from repro.datasets import FileDataset

    dataset = FileDataset(args.dir)
    corpus = args.corpus or next(iter(dataset.manifest["corpora"]))
    options = PipelineOptions(
        corpus=corpus, header_learning_snapshot=dataset.snapshots[-1]
    )
    result = OffnetPipeline(dataset, options).run()
    rows = build_table3(result)
    print(
        render_table(
            ["Hypergiant", "first (certs)", "max [when]", "last (certs)"],
            [row.format() for row in rows],
            title=f"Off-net footprints from {args.dir} ({corpus})",
        )
    )
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "validate": _cmd_validate,
    "coverage": _cmd_coverage,
    "growth": _cmd_growth,
    "dump": _cmd_dump,
    "export": _cmd_export,
    "run-files": _cmd_run_files,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
