"""The serving policy: what every server presents, resolved on demand.

One shared :class:`ServingPolicy` instance answers, for any server at any
snapshot:

* is HTTPS up at all? (Netflix's 2017-2019 HTTP-only fraction, §6.2)
* which default chain does a no-SNI handshake get? (including Google
  on-nets that answer only to first-party SNI — the §8 hide-and-seek case)
* which chain does a given SNI get? (used by ZGrab validation; Akamai
  off-nets also answer for their delivery customers' domains, which is the
  §5 cross-validation anomaly)
* which response headers come back?
"""

from __future__ import annotations

from repro.hypergiants.certs import CertificateBook
from repro.hypergiants.headers import HeaderBook, Headers
from repro.hypergiants.profiles import STOCK_STACKS, profile, stack_profile
from repro.scan.handshake import (
    UNKNOWN_STACK,
    StackFeatures,
    certificate_covers_domain,
    dns_name_matches,
    stack_features,
)
from repro.scan.server import ServerKind, SimulatedServer
from repro.timeline import NETFLIX_HTTP_ERA, Snapshot
from repro.world.events import EventOverlay
from repro.x509.chain import CertificateChain

__all__ = ["ServingPolicy", "NETFLIX_HTTP_ONLY_FRACTION", "AKAMAI_DELIVERY_CUSTOMERS"]

#: 26.8% of Netflix off-net IPs stopped answering HTTPS in the era (§6.2).
NETFLIX_HTTP_ONLY_FRACTION = 0.268

#: Hypergiants whose content Akamai also delivers; genuine Akamai off-nets
#: answer (and validate) SNI requests for these HGs' domains (§5).
AKAMAI_DELIVERY_CUSTOMERS: tuple[str, ...] = ("apple", "microsoft", "twitter", "disney")

#: Fraction of Google on-net front-ends that answer only first-party SNI
#: (null default certificate — §8 hide-and-seek, case observed for Google).
_GOOGLE_SNI_ONLY_GROUP = 1


def _offnet_shard(server: SimulatedServer, snapshot: Snapshot) -> int:
    """Which certificate shard an off-net server belongs to (Fig. 11).

    Google keeps a dominant certificate (~55% of IPs) with a small tail;
    Facebook started fully aggregated in 2014 and disaggregated over the
    years; other HGs run a few shards.
    """
    hg = server.hypergiant
    salt = server.salt
    if hg == "google":
        # 55% / 20% / 15% / 10% — a dominant *.googlevideo.com group.
        for shard, threshold in enumerate((0.55, 0.75, 0.90, 1.01)):
            if salt < threshold:
                return shard
    if hg == "facebook":
        # Sharding grows roughly twice a year after the CDN launch.
        months = max(0, snapshot.months_since(Snapshot(2016, 7)))
        shards = 1 + months // 6
        return int(salt * shards)
    return int(salt * 3)


class ServingPolicy:
    """Resolves server behaviour against the certificate and header books.

    ``evading_hypergiant``/``evasion_strategies`` implement the §8
    hide-and-seek options for one hypergiant's off-nets.
    """

    def __init__(
        self,
        cert_book: CertificateBook,
        header_book: HeaderBook,
        evading_hypergiant: str = "",
        evasion_strategies: tuple[str, ...] = (),
        overlay: EventOverlay | None = None,
    ) -> None:
        self._certs = cert_book
        self._headers = header_book
        self._evader = evading_hypergiant
        self._evasions = frozenset(evasion_strategies)
        # Scenario-event overlay: mass cert-rotation events bump the
        # generation every hypergiant chain is issued under.  ``None``
        # (event-free worlds) keeps all call sites on generation 0.
        self._overlay = overlay

    def _evades(self, server: SimulatedServer, strategy: str) -> bool:
        return (
            strategy in self._evasions
            and server.kind is ServerKind.HG_OFFNET
            and server.hypergiant == self._evader
        )

    def _generation(self, hypergiant: str, snapshot: Snapshot) -> int:
        """The cert-rotation generation for a HG's chains at ``snapshot``."""
        if self._overlay is None:
            return 0
        return self._overlay.cert_generation(hypergiant, snapshot)

    # -- availability -----------------------------------------------------

    def https_enabled(self, server: SimulatedServer, snapshot: Snapshot) -> bool:
        """Is port 443 answering at all?"""
        if (
            server.kind is ServerKind.HG_OFFNET
            and server.hypergiant == "netflix"
            and server.salt < NETFLIX_HTTP_ONLY_FRACTION
            and NETFLIX_HTTP_ERA[0] <= snapshot < NETFLIX_HTTP_ERA[1]
        ):
            return False
        return True

    # -- certificates ------------------------------------------------------

    def default_chain(
        self, server: SimulatedServer, snapshot: Snapshot
    ) -> CertificateChain | None:
        """The chain a no-SNI handshake receives (``None`` = null default)."""
        kind = server.kind
        book = self._certs
        if kind is ServerKind.HG_ONNET:
            if (
                server.hypergiant == "google"
                and server.domain_group == _GOOGLE_SNI_ONLY_GROUP
            ):
                # www.google.com front-ends: certificate only with SNI.
                return None
            if server.hypergiant == "cloudflare" and server.domain_group >= 100:
                # Universal SSL edges: domain_group encodes the bundle
                # (100+b = customer bundle, 200+b = the www-alias bundle).
                if server.domain_group >= 200:
                    return book.cloudflare_www_bundle_chain(
                        server.domain_group - 200, snapshot
                    )
                return book.cloudflare_bundle_chain(server.domain_group - 100, snapshot)
            return book.hypergiant_chain(
                server.hypergiant,
                server.domain_group,
                snapshot,
                generation=self._generation(server.hypergiant, snapshot),
            )
        if kind is ServerKind.HG_OFFNET:
            if self._evades(server, "null-default-certificate"):
                return None  # §8 (1): certificate only with first-party SNI
            if self._evades(server, "unique-domains"):
                return book.unique_domain_chain(server.hypergiant, server.asn, snapshot)
            if self._evades(server, "strip-organization"):
                return book.stripped_organization_chain(server.hypergiant, snapshot)
            # A quarter of Netflix off-net IPs kept serving fresh valid
            # certificates through the expired era (§6.2's surviving base).
            offnet_era_behaviour = not (
                server.hypergiant == "netflix" and server.salt >= 0.75
            )
            return book.hypergiant_chain(
                server.hypergiant,
                server.domain_group,
                snapshot,
                offnet=offnet_era_behaviour,
                shard=_offnet_shard(server, snapshot),
                generation=self._generation(server.hypergiant, snapshot),
            )
        if kind is ServerKind.HG_SERVICE:
            return book.hypergiant_chain(
                server.hypergiant,
                0,
                snapshot,
                generation=self._generation(server.hypergiant, snapshot),
            )
        if kind is ServerKind.CF_CUSTOMER:
            if server.dedicated_cert:
                return book.cloudflare_dedicated_chain(server.domain_group, snapshot)
            return book.cloudflare_bundle_chain(server.domain_group, snapshot)
        if kind is ServerKind.MGMT_INTERFACE:
            hg = profile(server.hypergiant)
            group = min(1, len(hg.domain_groups) - 1)
            return book.hypergiant_chain(server.hypergiant, group, snapshot)
        if kind is ServerKind.SHARED_CERT:
            return book.shared_chain(server.hypergiant, server.domain_group, snapshot)
        if kind is ServerKind.FAKE_DV:
            return book.fake_dv_chain(server.hypergiant, server.domain_group, snapshot)
        # Background web.
        return book.background_chain(
            server.domain_group, f"Example Site {server.domain_group} LLC",
            snapshot, server.invalid_mode,
        )

    def sni_chain(
        self, server: SimulatedServer, domain: str, snapshot: Snapshot
    ) -> CertificateChain | None:
        """The chain returned for an explicit SNI, or ``None`` if the server
        has no matching certificate (the client then gets the default)."""
        kind = server.kind
        book = self._certs
        if kind in (ServerKind.HG_ONNET, ServerKind.HG_OFFNET):
            hg = profile(server.hypergiant)
            groups = (
                range(len(hg.domain_groups))
                if kind is ServerKind.HG_ONNET
                else (server.domain_group,)
            )
            for group in groups:
                if any(dns_name_matches(p, domain) for p in hg.domain_groups[group]):
                    return book.hypergiant_chain(
                        server.hypergiant, group, snapshot,
                        offnet=kind is ServerKind.HG_OFFNET,
                        generation=self._generation(server.hypergiant, snapshot),
                    )
            if kind is ServerKind.HG_OFFNET and server.hypergiant == "akamai":
                # Akamai delivers other HGs' content from the same caches.
                for customer in AKAMAI_DELIVERY_CUSTOMERS:
                    customer_profile = profile(customer)
                    for group, names in enumerate(customer_profile.domain_groups):
                        if any(dns_name_matches(p, domain) for p in names):
                            return book.hypergiant_chain(customer, group, snapshot)
            return None
        default = self.default_chain(server, snapshot)
        if default is not None and certificate_covers_domain(default.end_entity, domain):
            return default
        return None

    # -- headers ------------------------------------------------------------

    def headers(
        self, server: SimulatedServer, snapshot: Snapshot, port: int
    ) -> Headers | None:
        """Response headers for a GET on ``port`` (None = no HTTP service)."""
        if port == 443 and not self.https_enabled(server, snapshot):
            return None
        if self._evades(server, "strip-headers") or self._evades(server, "quic-only"):
            # No TCP HTTP service at all: stripped endpoints refuse the
            # GET, QUIC-only endpoints never listen on TCP 80/443.
            return None
        if self._evades(server, "spoof-headers"):
            return self._headers.spoofed_headers(server)
        if self._evades(server, "middlebox-rewrite"):
            return self._headers.middlebox_headers(server, snapshot)
        if self._evades(server, "anonymize-headers"):
            return self._headers.anonymous_headers(server)  # §8 (4)
        return self._headers.headers_for(server, snapshot, port)

    # -- TLS stack features --------------------------------------------------

    def stack_profile(
        self, server: SimulatedServer, snapshot: Snapshot
    ) -> StackFeatures:
        """The TLS stack features a handshake with the server elicits.

        Hypergiant metal exhibits its operator's stack (an in-path
        middlebox or header games cannot change how the TLS stack itself
        negotiates); third-party edges exhibit the *edge* CDN's stack;
        everything else draws a stock stack from the server's salt.  A
        QUIC-only evader still completes a QUIC handshake, so its stack
        stays observable — with an ALPN set collapsed to ``h3``.
        """
        kind = server.kind
        if kind is ServerKind.HG_ONNET or kind is ServerKind.HG_OFFNET:
            stack = stack_profile(server.hypergiant)
            if stack == UNKNOWN_STACK:
                return self._stock_stack(server)
            if self._evades(server, "quic-only"):
                return stack_features(("h3",), stack[1], stack[2])
            return stack
        if kind is ServerKind.HG_SERVICE:
            edge = stack_profile(server.edge_hypergiant or "akamai")
            return edge if edge != UNKNOWN_STACK else self._stock_stack(server)
        if kind is ServerKind.CF_CUSTOMER:
            return stack_profile("cloudflare")
        return self._stock_stack(server)

    @staticmethod
    def _stock_stack(server: SimulatedServer) -> StackFeatures:
        return STOCK_STACKS[int(server.salt * len(STOCK_STACKS)) % len(STOCK_STACKS)]
