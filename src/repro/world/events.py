"""Mid-timeline scenario events: the world mutating *between* snapshots.

The hand-shaped world already carries longitudinal episodes baked into its
schedules (the §6.2 Netflix withdrawal/restoration, the Akamai consolidation
after 2018) and per-run noise (hijacks, route leaks, §8 evasion strategies).
Scenario events add a fourth axis: *declarative* mutations that a
:class:`~repro.scenario.spec.ScenarioSpec` can schedule anywhere on the
timeline without editing schedule anchors.

Four event kinds are supported (the ROADMAP item 1 catalogue):

``flash-crowd``
    A hypergiant's off-net deployment target is multiplied while the event
    is active — a demand spike like the paper's COVID-era expansion (§6.1)
    but at a chosen time and magnitude.  When the window closes the
    deployment engine's ordinary shrink path releases the extra ASes.
``cache-withdrawal``
    A fraction of a hypergiant's deployed off-net ASes goes dark — the
    generalisation of the §6.2 Netflix episode.  Withdrawn ASes leave the
    plan's deployed set (so ground truth shrinks) and their servers stop
    answering scans; when the window closes the *same* ASes return
    (selection is keyed by the engine's per-(HG, AS) jitter, not by a
    stream that drifts).
``cert-rotation``
    A mass certificate reissue: from the event's start every chain the
    hypergiant serves is a new *generation* — same names, same validity
    era, fresh serial/fingerprint — modelling fleet-wide rotation after a
    key-compromise scare.  The §4 pipeline keys on dNSNames, so the funnel
    holds while the unique-certificate census visibly steps.
``scan-outage``
    One scanner (or all of them) loses a region for the window — servers in
    the continent vanish from that corpus only, modelling the vantage-point
    outages §4.1 warns about.  Ground truth is untouched, so coverage
    validation shows the dip.

Events live here (in the world layer) rather than in ``repro.scenario`` so
:class:`~repro.world.config.WorldConfig` can embed them without an import
cycle; the scenario package re-exports them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.timeline import STUDY_END, STUDY_START, Snapshot

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hypergiants.deployment import DeploymentPlan
    from repro.net.asn import ASN
    from repro.scan.server import SimulatedServer
    from repro.topology.generator import GeneratedTopology

__all__ = ["EVENT_KINDS", "EventOverlay", "ScenarioEvent"]

#: Every event kind the engine understands, in catalogue order.
EVENT_KINDS = ("flash-crowd", "cache-withdrawal", "cert-rotation", "scan-outage")

#: Scanner names a ``scan-outage`` may target ("" targets all of them).
_KNOWN_SCANNERS = ("rapid7", "censys", "certigo")

#: Continent display names a ``scan-outage`` region must use (kept as
#: literals so this module needs no geography import at runtime).
_KNOWN_REGIONS = (
    "Asia",
    "Europe",
    "South America",
    "North America",
    "Africa",
    "Oceania",
)


@dataclass(frozen=True, slots=True)
class ScenarioEvent:
    """One scheduled mutation of the world, active over ``[start, end)``.

    Snapshots are carried as ``YYYY-MM`` labels (not :class:`Snapshot`)
    so an event embeds losslessly in :meth:`WorldConfig fingerprints
    <repro.world.world.World.fingerprint>` and JSON reports.
    """

    #: One of :data:`EVENT_KINDS`.
    kind: str
    #: First snapshot label (``YYYY-MM``) the event is active at.
    start: str
    #: First snapshot label the event is *no longer* active at
    #: ("" = active through the study's end).
    end: str = ""
    #: Target hypergiant key (required for every kind except scan-outage).
    hypergiant: str = ""
    #: flash-crowd: deployment-target multiplier (> 1).
    #: cache-withdrawal: fraction of deployed ASes withdrawn (0 < f <= 1).
    magnitude: float = 1.0
    #: scan-outage: continent display name (e.g. ``"South America"``).
    region: str = ""
    #: scan-outage: scanner name to black out ("" = every scanner).
    scanner: str = ""

    def __post_init__(self) -> None:
        if self.kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {self.kind!r}; choose from {EVENT_KINDS}")
        start = Snapshot.parse(self.start)
        if not STUDY_START <= start <= STUDY_END:
            raise ValueError(f"event start {self.start} outside the study window")
        if self.end:
            if Snapshot.parse(self.end) <= start:
                raise ValueError(f"event end {self.end} must be after start {self.start}")
        if self.kind == "scan-outage":
            if self.region not in _KNOWN_REGIONS:
                raise ValueError(
                    f"scan-outage region {self.region!r} must be one of {_KNOWN_REGIONS}"
                )
            if self.scanner and self.scanner not in _KNOWN_SCANNERS:
                raise ValueError(
                    f"scan-outage scanner {self.scanner!r} must be one of {_KNOWN_SCANNERS}"
                )
        else:
            if not self.hypergiant:
                raise ValueError(f"{self.kind} events require a hypergiant")
        if self.kind == "flash-crowd" and self.magnitude <= 1.0:
            raise ValueError(f"flash-crowd magnitude must exceed 1.0: {self.magnitude}")
        if self.kind == "cache-withdrawal" and not 0.0 < self.magnitude <= 1.0:
            raise ValueError(
                f"cache-withdrawal magnitude must be a fraction in (0, 1]: {self.magnitude}"
            )

    def active_at(self, snapshot: Snapshot) -> bool:
        """True while ``snapshot`` falls inside ``[start, end)``."""
        if snapshot < Snapshot.parse(self.start):
            return False
        return not self.end or snapshot < Snapshot.parse(self.end)

    def describe(self) -> str:
        """One human line for CLI listings and run reports."""
        window = f"{self.start}..{self.end or 'end'}"
        if self.kind == "flash-crowd":
            return f"flash-crowd: {self.hypergiant} x{self.magnitude:g} over {window}"
        if self.kind == "cache-withdrawal":
            return (
                f"cache-withdrawal: {self.magnitude:.0%} of {self.hypergiant} "
                f"off-nets dark over {window}"
            )
        if self.kind == "cert-rotation":
            return f"cert-rotation: {self.hypergiant} reissues its fleet at {self.start}"
        scope = self.scanner or "all scanners"
        return f"scan-outage: {scope} lose {self.region} over {window}"


class EventOverlay:
    """The per-world view of a scenario's events, answered per snapshot.

    Built once by :class:`~repro.world.world.World` when the config carries
    events (worlds without events carry no overlay at all, keeping the
    default path byte-for-byte identical to the pre-scenario engine).  All
    answers are pure functions of (events, topology, plan) — no RNG, so
    the overlay can be consulted from any worker process in any order.
    """

    def __init__(
        self,
        events: tuple[ScenarioEvent, ...],
        topology: GeneratedTopology,
        plan: DeploymentPlan,
    ) -> None:
        self._events = tuple(events)
        self._topology = topology
        self._plan = plan

    @property
    def events(self) -> tuple[ScenarioEvent, ...]:
        """The scheduled events, in spec order."""
        return self._events

    def active_at(self, snapshot: Snapshot) -> tuple[ScenarioEvent, ...]:
        """Events whose window covers ``snapshot``, in spec order."""
        return tuple(e for e in self._events if e.active_at(snapshot))

    def withdrawal_suppressed(self, server: SimulatedServer, snapshot: Snapshot) -> bool:
        """True when ``server`` is dark because its AS is withdrawn.

        The deployment plan records withdrawn ASes per (HG, snapshot);
        suppression applies to the HG's deployed footprint there —
        off-net caches and (for Cloudflare-style HGs) customer back-ends.
        """
        hypergiant = server.hypergiant
        if not hypergiant or server.kind.name not in ("HG_OFFNET", "CF_CUSTOMER"):
            return False
        return server.asn in self._plan.withdrawn_at(hypergiant, snapshot)

    def scan_suppressed(self, scanner: str, asn: ASN, snapshot: Snapshot) -> bool:
        """True when ``scanner`` cannot see ``asn`` at ``snapshot``."""
        country = self._topology.countries.get(asn)
        if country is None:
            return False
        for event in self._events:
            if event.kind != "scan-outage" or not event.active_at(snapshot):
                continue
            if event.scanner and event.scanner != scanner:
                continue
            if country.continent.value == event.region:
                return True
        return False

    def cert_generation(self, hypergiant: str, snapshot: Snapshot) -> int:
        """How many mass rotations ``hypergiant`` has performed by now.

        Generation 0 is the un-rotated fleet; each cert-rotation event
        whose start has passed bumps it by one.  Rotation is one-way — a
        reissued certificate does not un-issue when a window closes — so
        only the start matters.
        """
        return sum(
            1
            for event in self._events
            if event.kind == "cert-rotation"
            and event.hypergiant == hypergiant
            and snapshot >= Snapshot.parse(event.start)
        )

    def meta(self) -> list[dict]:
        """JSON-ready event descriptions for the run report."""
        return [
            {
                "kind": event.kind,
                "start": event.start,
                "end": event.end,
                "hypergiant": event.hypergiant,
                "magnitude": event.magnitude,
                "region": event.region,
                "scanner": event.scanner,
                "summary": event.describe(),
            }
            for event in self._events
        ]
