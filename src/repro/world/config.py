"""World configuration.

``scale`` is the master knob: it scales every paper-level count (71k ASes,
4.5k host ASes, ...) down to something a laptop sweeps in seconds.  The
default test scale (0.01) builds a ~700-AS Internet; benchmarks use 0.1
(~7k ASes) where the paper's demographics reproduce closely.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["WorldConfig"]

#: Paper-level AS census at the study's start and end (§6.3).
PAPER_ASES_START = 45_000
PAPER_ASES_END = 71_000


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Every knob of the synthetic world."""

    seed: int = 7
    #: Fraction of the real Internet's AS count to build.
    scale: float = 0.02
    #: Background (non-HG) servers per AS at the study's end, by multiplier
    #: on the per-category base counts; drives Figure 2's totals.
    background_density: float = 1.0
    #: Fraction of background servers presenting §4.1-invalid certificates
    #: ("more than one third of the hosts returned invalid certificates").
    invalid_fraction: float = 0.45
    #: Off-net server IPs per (HG, hosting AS).  Akamai uses many more IPs
    #: per AS than its AS footprint suggests (§5's IP-count discussion).
    offnet_ips_per_as: int = 0  # 0 = per-HG defaults
    #: On-net server IPs per top-4 HG at the study's end (smaller HGs get
    #: a third of this).
    onnet_ips_per_hg: int = 60
    #: Number of forged-DV certificate servers (§4.2's attack).
    fake_dv_servers: int = 12
    #: Number of shared-certificate servers (§3's shared-cert case).
    shared_cert_servers: int = 6
    #: §7 "Certificates in IPv6 addresses": fraction of late-arriving
    #: eyeball ASes that are IPv6-only mobile operators.  Servers inside
    #: them exist in ground truth but are invisible to the IPv4-wide scans
    #: the corpuses cover — the paper's acknowledged blind spot.
    ipv6_only_fraction: float = 0.0
    #: §8 hide-and-seek: the hypergiant trying to hide its off-nets
    #: (empty = nobody hides).
    evading_hypergiant: str = ""
    #: Which §8 strategies the evading HG applies to its off-nets:
    #: "null-default-certificate" (answer only to SNI),
    #: "strip-organization" (no Organization in the EE certificate),
    #: "anonymize-headers" (no debug headers),
    #: "unique-domains" (per-deployment hostnames never served on-net),
    #: "spoof-headers" (banner spoofed to an unrelated server product),
    #: "strip-headers" (no HTTP service answers the scanner at all),
    #: "middlebox-rewrite" (an in-path middlebox rewrites the banner),
    #: "quic-only" (HTTP only over QUIC; TCP header probes see nothing).
    evasion_strategies: tuple[str, ...] = ()

    _KNOWN_EVASIONS = (
        "null-default-certificate",
        "strip-organization",
        "anonymize-headers",
        "unique-domains",
        "spoof-headers",
        "strip-headers",
        "middlebox-rewrite",
        "quic-only",
    )

    def __post_init__(self) -> None:
        if not 0.003 <= self.scale <= 1.0:
            raise ValueError(f"scale out of range (0.003..1.0): {self.scale}")
        if not 0.0 <= self.invalid_fraction < 1.0:
            raise ValueError(f"invalid_fraction out of range: {self.invalid_fraction}")
        if self.background_density <= 0:
            raise ValueError("background_density must be positive")
        if not 0.0 <= self.ipv6_only_fraction <= 1.0:
            raise ValueError(f"ipv6_only_fraction out of range: {self.ipv6_only_fraction}")
        for strategy in self.evasion_strategies:
            if strategy not in self._KNOWN_EVASIONS:
                raise ValueError(
                    f"unknown evasion strategy {strategy!r}; "
                    f"choose from {self._KNOWN_EVASIONS}"
                )
        if self.evasion_strategies and not self.evading_hypergiant:
            raise ValueError("evasion_strategies require an evading_hypergiant")

    @property
    def n_ases_start(self) -> int:
        return max(40, round(PAPER_ASES_START * self.scale))

    @property
    def n_ases_end(self) -> int:
        return max(60, round(PAPER_ASES_END * self.scale))
