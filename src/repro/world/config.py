"""World configuration.

``scale`` is the master knob: it scales every paper-level count (71k ASes,
4.5k host ASes, ...) down to something a laptop sweeps in seconds.  The
default test scale (0.01) builds a ~700-AS Internet; benchmarks use 0.1
(~7k ASes) where the paper's demographics reproduce closely.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.world.events import ScenarioEvent

__all__ = ["WorldConfig"]

#: Continent display names accepted by :attr:`WorldConfig.region_weights`
#: (kept as literals to avoid importing the geography table here).
_KNOWN_CONTINENTS = (
    "Asia",
    "Europe",
    "South America",
    "North America",
    "Africa",
    "Oceania",
)

#: Cone categories whose census share :attr:`WorldConfig.cone_shares` may
#: override.  "Stub" is absent by design: stubs are always the remainder,
#: mirroring how §6.3 reports the non-stub tail.
_KNOWN_CONE_OVERRIDES = ("Small", "Medium", "Large", "XLarge")

#: Paper-level AS census at the study's start and end (§6.3).
PAPER_ASES_START = 45_000
PAPER_ASES_END = 71_000


@dataclass(frozen=True, slots=True)
class WorldConfig:
    """Every knob of the synthetic world."""

    seed: int = 7
    #: Fraction of the real Internet's AS count to build.
    scale: float = 0.02
    #: Background (non-HG) servers per AS at the study's end, by multiplier
    #: on the per-category base counts; drives Figure 2's totals.
    background_density: float = 1.0
    #: Fraction of background servers presenting §4.1-invalid certificates
    #: ("more than one third of the hosts returned invalid certificates").
    invalid_fraction: float = 0.45
    #: Off-net server IPs per (HG, hosting AS).  Akamai uses many more IPs
    #: per AS than its AS footprint suggests (§5's IP-count discussion).
    offnet_ips_per_as: int = 0  # 0 = per-HG defaults
    #: On-net server IPs per top-4 HG at the study's end (smaller HGs get
    #: a third of this).
    onnet_ips_per_hg: int = 60
    #: Number of forged-DV certificate servers (§4.2's attack).
    fake_dv_servers: int = 12
    #: Number of shared-certificate servers (§3's shared-cert case).
    shared_cert_servers: int = 6
    #: §7 "Certificates in IPv6 addresses": fraction of late-arriving
    #: eyeball ASes that are IPv6-only mobile operators.  Servers inside
    #: them exist in ground truth but are invisible to the IPv4-wide scans
    #: the corpuses cover — the paper's acknowledged blind spot.
    ipv6_only_fraction: float = 0.0
    #: §8 hide-and-seek: the hypergiant trying to hide its off-nets
    #: (empty = nobody hides).
    evading_hypergiant: str = ""
    #: Which §8 strategies the evading HG applies to its off-nets:
    #: "null-default-certificate" (answer only to SNI),
    #: "strip-organization" (no Organization in the EE certificate),
    #: "anonymize-headers" (no debug headers),
    #: "unique-domains" (per-deployment hostnames never served on-net),
    #: "spoof-headers" (banner spoofed to an unrelated server product),
    #: "strip-headers" (no HTTP service answers the scanner at all),
    #: "middlebox-rewrite" (an in-path middlebox rewrites the banner),
    #: "quic-only" (HTTP only over QUIC; TCP header probes see nothing).
    evasion_strategies: tuple[str, ...] = ()
    #: Scenario-engine knob: per-continent multipliers on the country
    #: sampling weights, as ``(("Asia", 3.0), ...)`` pairs.  Empty keeps
    #: the paper-anchored Fig. 6 regional mix bit-identically.
    region_weights: tuple[tuple[str, float], ...] = ()
    #: Scenario-engine knob: overrides for the §6.3 cone-category census
    #: shares, as ``(("Small", 0.4), ...)`` pairs; stubs always absorb the
    #: remainder.  Empty keeps the paper shares bit-identically.
    cone_shares: tuple[tuple[str, float], ...] = ()
    #: Scenario-engine knob: restrict the deployed hypergiants to this
    #: roster of schedule keys (empty = the full 13-HG cast).
    hypergiant_roster: tuple[str, ...] = ()
    #: Scenario-engine knob: mid-timeline events (flash crowds, cache
    #: withdrawals, cert rotations, scan outages) applied between
    #: snapshots.  Empty = the unmodified hand-shaped timeline.
    events: tuple[ScenarioEvent, ...] = ()
    #: Label of the named scenario this config came from ("" when built
    #: directly); surfaced in run reports, never read by generation.
    scenario: str = ""

    _KNOWN_EVASIONS = (
        "null-default-certificate",
        "strip-organization",
        "anonymize-headers",
        "unique-domains",
        "spoof-headers",
        "strip-headers",
        "middlebox-rewrite",
        "quic-only",
    )

    def __post_init__(self) -> None:
        if not 0.003 <= self.scale <= 1.0:
            raise ValueError(f"scale out of range (0.003..1.0): {self.scale}")
        if not 0.0 <= self.invalid_fraction < 1.0:
            raise ValueError(f"invalid_fraction out of range: {self.invalid_fraction}")
        if self.background_density <= 0:
            raise ValueError("background_density must be positive")
        if not 0.0 <= self.ipv6_only_fraction <= 1.0:
            raise ValueError(f"ipv6_only_fraction out of range: {self.ipv6_only_fraction}")
        for strategy in self.evasion_strategies:
            if strategy not in self._KNOWN_EVASIONS:
                raise ValueError(
                    f"unknown evasion strategy {strategy!r}; "
                    f"choose from {self._KNOWN_EVASIONS}"
                )
        if self.evasion_strategies and not self.evading_hypergiant:
            raise ValueError("evasion_strategies require an evading_hypergiant")
        for continent, multiplier in self.region_weights:
            if continent not in _KNOWN_CONTINENTS:
                raise ValueError(
                    f"unknown continent {continent!r} in region_weights; "
                    f"choose from {_KNOWN_CONTINENTS}"
                )
            if multiplier <= 0:
                raise ValueError(f"region weight for {continent} must be positive: {multiplier}")
        total_override = 0.0
        for category, share in self.cone_shares:
            if category not in _KNOWN_CONE_OVERRIDES:
                raise ValueError(
                    f"cone_shares may only override {_KNOWN_CONE_OVERRIDES}; got {category!r} "
                    "(stubs are always the remainder)"
                )
            if not 0.0 <= share < 1.0:
                raise ValueError(f"cone share for {category} out of range [0, 1): {share}")
            total_override += share
        if total_override >= 1.0:
            raise ValueError(f"cone_shares sum to {total_override:g}; must leave room for stubs")
        if self.hypergiant_roster:
            from repro.hypergiants.schedules import SCHEDULES

            for key in self.hypergiant_roster:
                if key not in SCHEDULES:
                    raise ValueError(
                        f"unknown hypergiant {key!r} in roster; "
                        f"choose from {tuple(sorted(SCHEDULES))}"
                    )
        if self.events:
            from repro.hypergiants.schedules import SCHEDULES

            for event in self.events:
                if not isinstance(event, ScenarioEvent):
                    raise ValueError(f"events must be ScenarioEvent instances, got {event!r}")
                if not event.hypergiant:
                    continue
                if event.hypergiant not in SCHEDULES:
                    raise ValueError(
                        f"event targets unknown hypergiant {event.hypergiant!r}; "
                        f"choose from {tuple(sorted(SCHEDULES))}"
                    )
                if self.hypergiant_roster and event.hypergiant not in self.hypergiant_roster:
                    raise ValueError(
                        f"event targets {event.hypergiant!r} which is not in the roster"
                    )

    @property
    def n_ases_start(self) -> int:
        return max(40, round(PAPER_ASES_START * self.scale))

    @property
    def n_ases_end(self) -> int:
        return max(60, round(PAPER_ASES_END * self.scale))
