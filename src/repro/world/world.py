"""The :class:`World` facade: corpuses, BGP, ground truth — one object.

A world is fully determined by its :class:`~repro.world.config.WorldConfig`
(seed + scale).  It exposes:

* ``scan(name, snapshot)`` — the Rapid7 / Censys / certigo corpus for a
  snapshot (LRU-cached: corpuses are large);
* ``ip2as(snapshot)`` — the merged, filtered Appendix A.1 mapping;
* ground-truth accessors the validation layer compares inferences against.
"""

from __future__ import annotations

import hashlib
import json
import random
from collections import OrderedDict
from dataclasses import asdict

from repro.bgp.collector import build_ribs
from repro.bgp.ip2as import IPToASMap
from repro.bgp.rib import RibSnapshot
from repro.hypergiants.deployment import DeploymentPlan
from repro.net.asn import ASN
from repro.net.ipv4 import IPv4Prefix
from repro.scan.records import ScanSnapshot
from repro.scan.scanner import CENSYS, CERTIGO, RAPID7, Scanner, ScannerProfile
from repro.scan.server import SimulatedServer
from repro.timeline import Snapshot
from repro.world.build import WorldParts, build_world_parts
from repro.world.config import WorldConfig
from repro.world.events import EventOverlay
from repro.world.policy import ServingPolicy

__all__ = ["World", "build_world"]

_SCANNER_PROFILES: dict[str, ScannerProfile] = {
    "rapid7": RAPID7,
    "censys": CENSYS,
    "certigo": CERTIGO,
}


class World:
    """The fully built synthetic Internet."""

    def __init__(self, parts: WorldParts) -> None:
        self.config = parts.config
        self.topology = parts.topology
        self.plan: DeploymentPlan = parts.plan
        self.servers: list[SimulatedServer] = parts.servers
        self.hg_onnet_ases = parts.hg_onnet_ases
        self.root_store = parts.root_store
        self.cert_book = parts.cert_book
        self.header_book = parts.header_book
        # Scenario events ride on an overlay consulted by the scanners and
        # the serving policy; event-free worlds carry no overlay at all, so
        # the default hot paths are untouched.
        self.event_overlay: EventOverlay | None = (
            EventOverlay(parts.config.events, parts.topology, parts.plan)
            if parts.config.events
            else None
        )
        self.policy = ServingPolicy(
            parts.cert_book,
            parts.header_book,
            evading_hypergiant=parts.config.evading_hypergiant,
            evasion_strategies=parts.config.evasion_strategies,
            overlay=self.event_overlay,
        )
        self.snapshots = parts.topology.snapshots

        self._server_by_ip = {server.ip: server for server in self.servers}
        self._scanners: dict[str, Scanner] = {}
        self._scan_cache: OrderedDict[tuple[str, Snapshot], ScanSnapshot] = OrderedDict()
        self._rib_cache: dict[Snapshot, list[RibSnapshot]] = {}
        self._ip2as_cache: dict[Snapshot, IPToASMap] = {}
        self._prefix_universe: tuple[IPv4Prefix, ...] | None = None
        self.ipv6_prefixes = parts.ipv6_prefixes
        self._ground_truth_tree = None
        self._dns = None
        self._anycast = None
        self._ip2as6_cache = None
        self._ipv6_scan_cache: dict[Snapshot, ScanSnapshot] = {}

    def fingerprint(self) -> str:
        """A stable identity for this world's data, for the stage-artifact
        cache (:mod:`repro.core.stages.keys`): a world is fully determined
        by its config, so hashing the config fields names every corpus
        byte it can ever serve."""
        document = json.dumps(asdict(self.config), sort_keys=True, default=list)
        digest = hashlib.sha256(document.encode("utf-8")).hexdigest()
        return f"world:{digest}"

    # -- corpus access -------------------------------------------------------

    @property
    def prefix_universe(self) -> tuple[IPv4Prefix, ...]:
        """Every allocated prefix (the scanners' exclusion universe)."""
        if self._prefix_universe is None:
            prefixes: list[IPv4Prefix] = []
            for per_as in self.topology.prefixes.values():
                prefixes.extend(per_as)
            self._prefix_universe = tuple(sorted(prefixes, key=lambda p: p.network))
        return self._prefix_universe

    def scanner(self, name: str) -> Scanner:
        """The scanner instance for a corpus name."""
        scanner = self._scanners.get(name)
        if scanner is None:
            try:
                profile = _SCANNER_PROFILES[name]
            except KeyError:
                raise KeyError(
                    f"unknown scanner {name!r}; choose from {sorted(_SCANNER_PROFILES)}"
                ) from None
            scanner = Scanner(profile, seed=self.config.seed)
            self._scanners[name] = scanner
        return scanner

    def scan(self, name: str, snapshot: Snapshot, cache_size: int = 6) -> ScanSnapshot:
        """One scanner's corpus for one snapshot (LRU-cached)."""
        key = (name, snapshot)
        cached = self._scan_cache.get(key)
        if cached is not None:
            self._scan_cache.move_to_end(key)
            return cached
        result = self.scanner(name).scan(self, snapshot)
        self._scan_cache[key] = result
        while len(self._scan_cache) > cache_size:
            self._scan_cache.popitem(last=False)
        return result

    def server_by_ip(self, ip: int) -> SimulatedServer | None:
        """Ground-truth lookup of the server at an address."""
        return self._server_by_ip.get(ip)

    def ground_truth_asn(self, ip: int):
        """The AS that truly owns an address (by prefix assignment) —
        infrastructure-side knowledge (DNS authorities use it), never the
        inference pipeline."""
        from repro.net.ipv6 import is_ipv6_int

        if is_ipv6_int(ip):
            for asn, prefix in self.ipv6_prefixes.items():
                if ip in prefix:
                    return asn
            return None
        if self._ground_truth_tree is None:
            from repro.net.radix import RadixTree

            tree: RadixTree = RadixTree()
            for asn, prefixes in self.topology.prefixes.items():
                for prefix in prefixes:
                    tree.insert(prefix, asn)
            self._ground_truth_tree = tree
        return self._ground_truth_tree.lookup_value(ip)

    @property
    def dns(self):
        """The hypergiants' authoritative DNS (lazy)."""
        if self._dns is None:
            from repro.dns.authority import HypergiantDNS

            self._dns = HypergiantDNS(self)
        return self._dns

    @property
    def anycast(self):
        """The anycast serving model (§3/§7; lazy)."""
        if self._anycast is None:
            from repro.world.anycast import AnycastSystem

            self._anycast = AnycastSystem(self)
        return self._anycast

    # -- BGP / IP-to-AS -------------------------------------------------------

    def ribs(self, snapshot: Snapshot) -> list[RibSnapshot]:
        """Both collectors' monthly RIBs for ``snapshot``."""
        cached = self._rib_cache.get(snapshot)
        if cached is None:
            rng = random.Random(f"{self.config.seed}:ribs:{snapshot.label}")
            cached = build_ribs(self.topology, snapshot, rng)
            self._rib_cache[snapshot] = cached
        return cached

    def ip2as(self, snapshot: Snapshot) -> IPToASMap:
        """The merged Appendix A.1 IP-to-AS map for ``snapshot``."""
        cached = self._ip2as_cache.get(snapshot)
        if cached is None:
            cached = IPToASMap.from_ribs(self.ribs(snapshot))
            self._ip2as_cache[snapshot] = cached
        return cached

    def ip2as6(self, snapshot: Snapshot):
        """The IPv6 prefix-to-AS map (§7 future work; time-invariant —
        every v6-enabled AS announces its /48 from birth)."""
        if self._ip2as6_cache is None:
            from repro.bgp.ip2as6 import IPv6ToASMap

            mapping = IPv6ToASMap()
            for asn, prefix in self.ipv6_prefixes.items():
                mapping.insert(prefix, frozenset({asn}))
            self._ip2as6_cache = mapping
        return self._ip2as6_cache

    def ip2as_dual(self, snapshot: Snapshot):
        """Both address families behind one lookup (§7 future work)."""
        from repro.bgp.ip2as6 import DualStackMap

        return DualStackMap(self.ip2as(snapshot), self.ip2as6(snapshot))

    def ipv6_scan(self, snapshot: Snapshot) -> ScanSnapshot:
        """A research IPv6 hitlist scan: the §7 future-work corpus.

        Sweeping all of v6 space is infeasible, but a hitlist of announced
        /48s (here: one per v6-enabled AS) captures the IPv6-only servers
        the IPv4 corpuses miss.
        """
        cached = self._ipv6_scan_cache.get(snapshot)
        if cached is not None:
            return cached
        result = ScanSnapshot(scanner="ipv6-research", snapshot=snapshot)
        store = result.store
        for server in self.servers:
            if not server.ipv6_only or not server.alive_at(snapshot):
                continue
            if self.policy.https_enabled(server, snapshot):
                chain = self.policy.default_chain(server, snapshot)
                if chain is not None:
                    store.add_tls(
                        server.ip, chain, self.policy.stack_profile(server, snapshot)
                    )
                    headers = self.policy.headers(server, snapshot, port=443)
                    if headers:
                        store.add_http(server.ip, 443, headers)
            headers = self.policy.headers(server, snapshot, port=80)
            if headers:
                store.add_http(server.ip, 80, headers)
        self._ipv6_scan_cache[snapshot] = result
        return result

    # -- scenario metadata -----------------------------------------------------

    def scenario_meta(self) -> dict:
        """The scenario identity of this world for the run report's
        ``scenario`` section: the named spec it came from (if any) and its
        event schedule.  Pure config — identical across executors and
        cache states by construction."""
        overlay = self.event_overlay
        return {
            "name": self.config.scenario,
            "seed": self.config.seed,
            "scale": self.config.scale,
            "events": overlay.meta() if overlay is not None else [],
            # Ground-truth effect of cache-withdrawal events: how many
            # (AS, snapshot) cells the plan marked dark.  Pure plan
            # arithmetic, so it needs no scan to have run.
            "withdrawn_as_snapshots": sum(
                len(ases)
                for per_snapshot in self.plan.withdrawn.values()
                for ases in per_snapshot.values()
            ),
        }

    # -- ground truth ----------------------------------------------------------

    def hypergiant_keys(self) -> tuple[str, ...]:
        """Every hypergiant with any ground-truth footprint."""
        return self.plan.hypergiants()

    def true_offnet_ases(self, hypergiant: str, snapshot: Snapshot) -> frozenset[ASN]:
        """Ground truth: ASes hosting the HG's hardware at ``snapshot``.

        For Cloudflare this is empty by definition — its "deployment" is
        customer back-ends, not Cloudflare hardware (§6.1).
        """
        if hypergiant == "cloudflare":
            return frozenset()
        return self.plan.deployed_at(hypergiant, snapshot)

    def true_service_ases(self, hypergiant: str, snapshot: Snapshot) -> frozenset[ASN]:
        """Ground truth: cert-only (service-present) ASes at ``snapshot``."""
        extra = self.plan.service_present_at(hypergiant, snapshot)
        if hypergiant == "cloudflare":
            return extra | self.plan.deployed_at("cloudflare", snapshot)
        return extra

    def onnet_ases(self, hypergiant: str) -> frozenset[ASN]:
        """The HG's own ASes."""
        return self.hg_onnet_ases.get(hypergiant, frozenset())

    def all_hg_ases(self) -> frozenset[ASN]:
        """Every AS owned by any examined hypergiant."""
        result: set[ASN] = set()
        for ases in self.hg_onnet_ases.values():
            result |= ases
        return frozenset(result)

    def servers_at(self, snapshot: Snapshot) -> list[SimulatedServer]:
        """All servers alive at ``snapshot``."""
        return [server for server in self.servers if server.alive_at(snapshot)]


def build_world(
    seed: int = 7,
    scale: float = 0.02,
    config: WorldConfig | None = None,
) -> World:
    """Build a world from a seed and scale (or a full config)."""
    if config is None:
        config = WorldConfig(seed=seed, scale=scale)
    return World(build_world_parts(config))
