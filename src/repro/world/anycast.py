"""Anycast serving — the §3 challenge and §7 limitation.

Some hypergiants serve user-facing traffic from **anycast** addresses
announced by their own AS; off-net sites announce the same prefix locally
(with BGP ``no-export``), so the address looks identical everywhere while
being served from inside the user's ISP.  Consequences the paper spells
out:

* a corpus scanner has *one* vantage point and therefore sees exactly one
  anycast site — "simply scanning the IP address space from one or a few
  locations is not enough to uncover every instance" (§3);
* operators commonly also give each off-net site a **unicast debug
  address** from the hosting AS, and *that* is what the certificate
  methodology discovers (§7) — but "there is no guarantee that operators
  will configure their networks in this way".

:class:`AnycastSystem` models the site selection; :func:`probe_anycast`
plays a measurement client at an arbitrary vantage AS.  The corpus
scanners are unchanged — they see the anycast IP as one on-net server,
exactly as Rapid7 does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.asn import ASN
from repro.timeline import Snapshot

__all__ = ["AnycastSystem", "AnycastProbe", "probe_anycast", "ANYCAST_HYPERGIANTS"]

#: HGs serving (part of) their traffic over anycast in the model.
ANYCAST_HYPERGIANTS: tuple[str, ...] = ("cloudflare", "google")


@dataclass(frozen=True, slots=True)
class AnycastProbe:
    """What a client at one vantage sees when hitting the anycast address."""

    hypergiant: str
    vantage_asn: ASN
    #: The AS whose site answered (the HG's own AS for on-net sites).
    site_asn: ASN
    #: Site label as it would surface in a debug header (e.g. a cf-ray tag).
    site_label: str
    #: The local site's unicast debug address, when one is configured.
    unicast_debug_ip: int | None


class AnycastSystem:
    """Site selection for the anycast hypergiants over one world."""

    def __init__(self, world) -> None:
        self._world = world

    def sites(self, hypergiant: str, snapshot: Snapshot) -> frozenset[ASN]:
        """All ASes with an anycast site at ``snapshot`` (HG AS included).

        For Cloudflare, customer-hosting ASes do not count — its off-net
        presence is an artefact (§6.1); its anycast sites live in the HG AS
        plus the ASes of the ISPs that agreed to host edge racks, which in
        the synthetic world is the service-present set.
        """
        if hypergiant not in ANYCAST_HYPERGIANTS:
            raise KeyError(f"{hypergiant!r} does not serve over anycast in the model")
        own = min(self._world.onnet_ases(hypergiant))
        hosts = self._world.true_offnet_ases(hypergiant, snapshot)
        if hypergiant == "cloudflare":
            hosts = self._world.true_service_ases(hypergiant, snapshot)
        return frozenset(hosts) | {own}

    def site_for_vantage(
        self, hypergiant: str, vantage_asn: ASN, snapshot: Snapshot
    ) -> ASN:
        """Which site BGP routes a given vantage to.

        Local site if the vantage AS hosts one; else the nearest site up
        the provider chain; else the HG's own (on-net) site.
        """
        sites = self.sites(hypergiant, snapshot)
        graph = self._world.topology.graph
        if vantage_asn in sites:
            return vantage_asn
        frontier = [vantage_asn]
        seen = {vantage_asn}
        for _ in range(3):  # provider-chain hops
            next_frontier: list[ASN] = []
            for asn in frontier:
                for provider in sorted(graph.providers(asn)):
                    if provider in seen:
                        continue
                    if provider in sites:
                        return provider
                    seen.add(provider)
                    next_frontier.append(provider)
            frontier = next_frontier
        return min(self._world.onnet_ases(hypergiant))


def probe_anycast(
    world, hypergiant: str, vantage_asn: ASN, snapshot: Snapshot
) -> AnycastProbe:
    """Hit the HG's anycast address from ``vantage_asn`` and report the
    serving site, like a measurement client parsing debug headers."""
    system = world.anycast
    site = system.site_for_vantage(hypergiant, vantage_asn, snapshot)
    own = min(world.onnet_ases(hypergiant))
    unicast: int | None = None
    if site != own:
        from repro.scan.server import ServerKind

        for server in world.servers:
            if (
                server.asn == site
                and server.hypergiant == hypergiant
                and server.kind in (ServerKind.HG_OFFNET, ServerKind.CF_CUSTOMER)
                and server.alive_at(snapshot)
            ):
                unicast = server.ip
                break
    return AnycastProbe(
        hypergiant=hypergiant,
        vantage_asn=vantage_asn,
        site_asn=site,
        site_label=f"{hypergiant[:3].upper()}-SITE-AS{site}",
        unicast_debug_ip=unicast,
    )
