"""World orchestration: one call builds the whole synthetic Internet.

:func:`build_world` generates the topology, runs the hypergiant deployment
engine, creates every server (on-nets, off-nets, third-party edges,
Cloudflare customers, management interfaces, forged certificates, and the
background web), and wires up the scanners and BGP collectors.  The
resulting :class:`World` exposes scan corpuses *and* the ground truth the
validation layer compares inferences against.
"""

from repro.world.config import WorldConfig
from repro.world.policy import ServingPolicy
from repro.world.world import World, build_world

__all__ = ["WorldConfig", "World", "build_world", "ServingPolicy"]
