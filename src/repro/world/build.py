"""World construction: populate the topology with every server kind.

The builder is the single place where ground truth is decided; everything
downstream (scanners, pipeline, validation) either observes or infers it.
"""

from __future__ import annotations

import random
from repro.hypergiants.certs import CertificateBook
from repro.hypergiants.deployment import DeploymentEngine, DeploymentPlan
from repro.hypergiants.headers import HeaderBook
from repro.hypergiants.profiles import HYPERGIANTS, TOP4, HypergiantProfile
from repro.net.asn import ASN
from repro.scan.server import ServerKind, SimulatedServer
from repro.timeline import STUDY_SNAPSHOTS, Snapshot
from repro.topology.generator import GeneratedTopology, TopologyConfig, generate_topology
from repro.topology.geography import country_by_code
from repro.topology.organizations import Organization
from repro.topology.categories import ConeCategory
from repro.world.config import WorldConfig
from repro.x509.store import build_web_pki

__all__ = ["WorldParts", "build_world_parts"]

#: First ASN handed to hypergiant on-net networks (clearly separated from
#: the generated ASes, well below the reserved 64496+ ranges).
_HG_ASN_BASE = 60001

#: Off-net server IPs per hosting AS, per HG.  Akamai famously uses an
#: order of magnitude more IPs per AS than Facebook (§5 / Table 2).
_OFFNET_IPS_PER_AS: dict[str, int] = {
    "akamai": 8,
    "google": 4,
    "facebook": 3,
    "netflix": 2,
}
_OFFNET_IPS_DEFAULT = 2

#: Background servers per AS at the study's end, by intended cone category.
_BACKGROUND_BASE: dict[ConeCategory, int] = {
    ConeCategory.STUB: 4,
    ConeCategory.SMALL: 8,
    ConeCategory.MEDIUM: 14,
    ConeCategory.LARGE: 28,
    ConeCategory.XLARGE: 44,
}

#: Fraction of background servers alive at the study's start (Fig. 2's
#: TLS-adoption growth: ~8M of ~35M certificates existed in 2013).
_BACKGROUND_START_FRACTION = 0.23

#: HGs whose cert-only ASes are cloud appliances, not CDN edges.
_MGMT_STYLE_HGS = frozenset({"amazon", "microsoft"})


class _IPAllocator:
    """Hands out addresses from each AS's prefixes, striding across them.

    Consecutive allocations within an AS land in *different* /24 blocks:
    real deployments (a hypergiant's caches, an ISP's web servers) are
    scattered through the network's address plan, and a scanner's
    /24-granular exclusion list must never be able to silently erase a
    whole AS's servers — or a whole hypergiant's on-net presence — in one
    bite.  The stride is a prime chosen coprime to the AS's capacity, so
    allocation is collision-free until the space is exhausted.
    """

    _STRIDE_CANDIDATES = (199, 197, 193, 191, 181)

    def __init__(self, topology: GeneratedTopology) -> None:
        self._topology = topology
        self._counters: dict[ASN, int] = {}
        self._plans: dict[ASN, tuple[int, int, tuple]] = {}

    def _plan(self, asn: ASN) -> tuple[int, int, tuple]:
        plan = self._plans.get(asn)
        if plan is None:
            prefixes = self._topology.prefixes.get(asn, ())
            if not prefixes:
                raise RuntimeError(f"AS{asn} has no prefixes")
            # Usable capacity per prefix (network/broadcast skipped).
            sizes = tuple(prefix.num_addresses - 2 for prefix in prefixes)
            capacity = sum(sizes)
            stride = next(
                (s for s in self._STRIDE_CANDIDATES if capacity % s != 0), 1
            )
            plan = (capacity, stride, tuple(zip(prefixes, sizes)))
            self._plans[asn] = plan
        return plan

    def next_ip(self, asn: ASN) -> int:
        capacity, stride, segments = self._plan(asn)
        counter = self._counters.get(asn, 0)
        if counter >= capacity:
            raise RuntimeError(f"AS{asn} ran out of addresses")
        self._counters[asn] = counter + 1
        index = (counter * stride) % capacity
        for prefix, size in segments:
            if index < size:
                return prefix.network + 1 + index
            index -= size
        raise AssertionError("unreachable: index within capacity")

    def next_ip_spread(self, asn: ASN) -> int:
        """Alias kept for call-site clarity: all allocation strides."""
        return self.next_ip(asn)


class WorldParts:
    """Everything the :class:`~repro.world.world.World` facade wraps."""

    def __init__(
        self,
        config: WorldConfig,
        topology: GeneratedTopology,
        plan: DeploymentPlan,
        servers: list[SimulatedServer],
        hg_onnet_ases: dict[str, frozenset[ASN]],
        root_store,
        cert_book: CertificateBook,
        header_book: HeaderBook,
        ipv6_prefixes: dict[ASN, object] | None = None,
    ) -> None:
        self.config = config
        self.topology = topology
        self.plan = plan
        self.servers = servers
        self.hg_onnet_ases = hg_onnet_ases
        self.root_store = root_store
        self.cert_book = cert_book
        self.header_book = header_book
        self.ipv6_prefixes = ipv6_prefixes or {}


def build_world_parts(config: WorldConfig) -> WorldParts:
    """Generate topology, run the deployment engine, create all servers."""
    rng = random.Random(config.seed)

    topology = generate_topology(
        TopologyConfig(
            seed=config.seed,
            n_ases_start=config.n_ases_start,
            n_ases_end=config.n_ases_end,
            region_weights=config.region_weights,
            category_shares=config.cone_shares,
        )
    )

    root_store, issuers = build_web_pki()
    cert_book = CertificateBook(issuers, seed=config.seed)
    header_book = HeaderBook(seed=config.seed)

    hg_onnet_ases = _add_hypergiant_ases(topology, rng, config.hypergiant_roster)
    excluded = frozenset(asn for ases in hg_onnet_ases.values() for asn in ases)

    plan = DeploymentEngine(
        topology,
        scale=config.scale,
        seed=config.seed,
        excluded_ases=excluded,
        events=config.events,
        roster=config.hypergiant_roster,
    ).run()

    allocator = _IPAllocator(topology)
    servers: list[SimulatedServer] = []
    servers.extend(_build_onnet_servers(config, topology, hg_onnet_ases, allocator, rng))
    servers.extend(_build_offnet_servers(config, topology, plan, allocator, rng))
    servers.extend(_build_service_servers(config, topology, plan, allocator, rng))
    servers.extend(_build_adversarial_servers(config, topology, excluded, allocator, rng))
    servers.extend(_build_background_servers(config, topology, excluded, allocator, rng))

    ipv6_only_ases = _select_ipv6_only_ases(config, topology)
    ipv6_prefixes = _assign_ipv6_prefixes(ipv6_only_ases)
    if ipv6_only_ases:
        counters: dict[ASN, int] = {}
        for server in servers:
            if server.asn in ipv6_only_ases:
                server.ipv6_only = True
                # Re-address onto the AS's /48: IPv6-only hosts have no v4.
                counters[server.asn] = counters.get(server.asn, 0) + 1
                server.ip = ipv6_prefixes[server.asn].network + counters[server.asn]

    return WorldParts(
        config=config,
        topology=topology,
        plan=plan,
        servers=servers,
        hg_onnet_ases=hg_onnet_ases,
        root_store=root_store,
        cert_book=cert_book,
        header_book=header_book,
        ipv6_prefixes=ipv6_prefixes,
    )


def _assign_ipv6_prefixes(ipv6_only_ases: frozenset[ASN]):
    """One /48 under 2001::/16 per IPv6-enabled AS."""
    from repro.net.ipv6 import IPv6Prefix

    prefixes = {}
    for index, asn in enumerate(sorted(ipv6_only_ases), start=1):
        prefixes[asn] = IPv6Prefix((0x2001 << 112) | (index << 80), 48)
    return prefixes


def _select_ipv6_only_ases(config: WorldConfig, topology: GeneratedTopology) -> frozenset[ASN]:
    """§7: late-arriving eyeball ASes that never deploy IPv4 services.

    Deterministic in the seed; only ASes born after 2016 qualify (the
    IPv6-only mobile-operator phenomenon is recent).
    """
    if config.ipv6_only_fraction <= 0:
        return frozenset()
    import zlib

    cutoff = Snapshot(2016, 1)
    chosen: set[ASN] = set()
    for asn in sorted(topology.eyeballs):
        if topology.births.get(asn, cutoff) <= cutoff:
            continue
        draw = zlib.crc32(f"ipv6only:{config.seed}:{asn}".encode()) / 2**32
        if draw < config.ipv6_only_fraction:
            chosen.add(asn)
    return frozenset(chosen)


def _add_hypergiant_ases(
    topology: GeneratedTopology,
    rng: random.Random,
    roster: tuple[str, ...] = (),
) -> dict[str, frozenset[ASN]]:
    """Register each HG's own ASes, named after its organisation (A.2).

    A non-empty scenario ``roster`` keeps only those HGs in the world — the
    rest get no on-net ASes (and hence no on-net servers either).
    """
    next_asn = _HG_ASN_BASE
    result: dict[str, frozenset[ASN]] = {}
    for hg in HYPERGIANTS:
        if roster and hg.key not in roster:
            continue
        ases: list[ASN] = []
        for index in range(hg.on_net_as_count):
            asn = next_asn
            next_asn += 1
            organization = Organization(
                org_id=f"ORG-HG-{hg.key}-{index}",
                name=hg.organization,
                country=country_by_code(hg.home_country),
            )
            # Two prefixes per AS: real HG address space spans many blocks,
            # and no single unannounced prefix may erase a HG from BGP.
            lengths = (
                (19, 20)
                if hg.key in set(TOP4) | {"amazon", "microsoft", "cloudflare"}
                else (21, 22)
            )
            topology.add_as(
                asn, organization, birth=STUDY_SNAPSHOTS[0], prefix_lengths=lengths
            )
            ases.append(asn)
        result[hg.key] = frozenset(ases)
    return result


def _salt(rng: random.Random) -> float:
    return rng.random()


def _staggered_birth(rng: random.Random, start_fraction: float) -> Snapshot:
    """Birth drawn so the population ramps linearly from ``start_fraction``."""
    u = rng.random()
    if u < start_fraction:
        return STUDY_SNAPSHOTS[0]
    span = STUDY_SNAPSHOTS[-1].months_since(STUDY_SNAPSHOTS[0])
    progress = (u - start_fraction) / (1.0 - start_fraction)
    return STUDY_SNAPSHOTS[0].plus_months(max(1, round(progress * span)))


def _group_for(hg: HypergiantProfile, rng: random.Random) -> int:
    """Domain-group assignment: the off-net group dominates (Fig. 11)."""
    n = len(hg.domain_groups)
    if n == 1 or rng.random() < 0.55:
        return 0
    return rng.randrange(1, n)


def _build_onnet_servers(
    config: WorldConfig,
    topology: GeneratedTopology,
    hg_onnet_ases: dict[str, frozenset[ASN]],
    allocator: _IPAllocator,
    rng: random.Random,
) -> list[SimulatedServer]:
    servers: list[SimulatedServer] = []
    majors = set(TOP4) | {"amazon", "microsoft", "cloudflare", "apple"}
    for hg in HYPERGIANTS:
        if hg.key not in hg_onnet_ases:
            continue  # outside the scenario roster: no on-net presence
        total = config.onnet_ips_per_hg if hg.key in majors else max(8, config.onnet_ips_per_hg // 3)
        ases = sorted(hg_onnet_ases[hg.key])
        for index in range(total):
            asn = ases[index % len(ases)]
            servers.append(
                SimulatedServer(
                    ip=allocator.next_ip_spread(asn),
                    asn=asn,
                    kind=ServerKind.HG_ONNET,
                    birth=_staggered_birth(rng, 0.4),
                    hypergiant=hg.key,
                    domain_group=_group_for(hg, rng),
                    salt=_salt(rng),
                )
            )
        if hg.key == "cloudflare":
            servers.extend(_build_cloudflare_bundle_edges(config, ases, allocator, rng))
    return servers


def _cf_customer_count(config: WorldConfig) -> int:
    """How many Cloudflare customer back-ends the world contains."""
    from repro.hypergiants.schedules import SCHEDULES, scaled_target

    schedule = SCHEDULES["cloudflare"]
    end = STUDY_SNAPSHOTS[-1]
    return scaled_target(
        schedule.deployed_target(end) + schedule.service_extra_target(end), config.scale
    )


def _build_cloudflare_bundle_edges(
    config: WorldConfig,
    onnet_ases: list[ASN],
    allocator: _IPAllocator,
    rng: random.Random,
) -> list[SimulatedServer]:
    """Cloudflare edges serving the Universal SSL bundles on-net, so the
    §4.2 on-net dNSName set includes every customer domain."""
    bundles = _cf_customer_count(config) // 20 + 1
    servers: list[SimulatedServer] = []
    for bundle in range(bundles):
        for group_offset, base in ((100, bundle), (200, bundle)):
            asn = onnet_ases[bundle % len(onnet_ases)]
            servers.append(
                SimulatedServer(
                    ip=allocator.next_ip_spread(asn),
                    asn=asn,
                    kind=ServerKind.HG_ONNET,
                    birth=STUDY_SNAPSHOTS[0],
                    hypergiant="cloudflare",
                    domain_group=group_offset + base,
                    salt=_salt(rng),
                )
            )
    return servers


def _hosting_interval(
    plan: DeploymentPlan, hypergiant: str, asn: ASN, service: bool = False
) -> tuple[Snapshot, Snapshot | None] | None:
    """(first, last-or-None) snapshot the AS appears in the HG's set."""
    accessor = plan.service_present_at if service else plan.deployed_at
    first: Snapshot | None = None
    last: Snapshot | None = None
    for snapshot in plan.snapshots:
        if asn in accessor(hypergiant, snapshot):
            if first is None:
                first = snapshot
            last = snapshot
    if first is None:
        return None
    death = None if last == plan.snapshots[-1] else last
    return first, death


def _build_offnet_servers(
    config: WorldConfig,
    topology: GeneratedTopology,
    plan: DeploymentPlan,
    allocator: _IPAllocator,
    rng: random.Random,
) -> list[SimulatedServer]:
    from repro.hypergiants.profiles import profile as hg_profile

    servers: list[SimulatedServer] = []
    for hypergiant, per_snapshot in plan.deployed.items():
        if hypergiant == "cloudflare":
            continue  # materialised as CF_CUSTOMER back-ends instead
        profile = hg_profile(hypergiant)
        ever_hosting = sorted(set().union(*per_snapshot.values()) if per_snapshot else set())
        per_as = config.offnet_ips_per_as or _OFFNET_IPS_PER_AS.get(
            hypergiant, _OFFNET_IPS_DEFAULT
        )
        for asn in ever_hosting:
            interval = _hosting_interval(plan, hypergiant, asn)
            if interval is None:
                continue
            birth, death = interval
            for index in range(per_as):
                # Deployments densify over time: the first server appears
                # when the AS starts hosting, the rest ramp in later — this
                # is what makes the off-net IP share of Figure 2 *grow*
                # faster than the corpus itself.
                server_birth = birth
                if index > 0:
                    ramp = _staggered_birth(rng, 0.15)
                    server_birth = max(birth, ramp)
                if death is not None and server_birth > death:
                    server_birth = birth
                salt = _salt(rng)
                headerless = False
                nginx_default = False
                if hypergiant == "netflix":
                    nginx_default = salt < profile.default_nginx_fraction
                    headerless = (
                        profile.default_nginx_fraction
                        <= salt
                        < profile.default_nginx_fraction + profile.headerless_fraction
                    )
                elif profile.headerless_fraction:
                    headerless = salt < profile.headerless_fraction
                servers.append(
                    SimulatedServer(
                        ip=allocator.next_ip(asn),
                        asn=asn,
                        kind=ServerKind.HG_OFFNET,
                        birth=server_birth,
                        death=death,
                        hypergiant=hypergiant,
                        headerless=headerless,
                        nginx_default=nginx_default,
                        domain_group=0,
                        salt=salt,
                    )
                )
    return servers


def _build_service_servers(
    config: WorldConfig,
    topology: GeneratedTopology,
    plan: DeploymentPlan,
    allocator: _IPAllocator,
    rng: random.Random,
) -> list[SimulatedServer]:
    """Cert-only ASes: third-party edges, cloud appliances, CF customers."""
    servers: list[SimulatedServer] = []
    edge_pool = ("akamai", "fastly", "verizon")
    cf_customer_id = 0

    # Cloudflare's *deployed* set is, in ground truth, customer back-ends.
    for asn in sorted(set().union(*plan.deployed.get("cloudflare", {}).values() or [set()])):
        interval = _hosting_interval(plan, "cloudflare", asn)
        if interval is None:
            continue
        birth, death = interval
        salt = _salt(rng)
        dedicated = salt < 0.25
        servers.append(
            SimulatedServer(
                ip=allocator.next_ip(asn),
                asn=asn,
                kind=ServerKind.CF_CUSTOMER,
                birth=birth,
                death=death,
                hypergiant="cloudflare",
                dedicated_cert=dedicated,
                domain_group=cf_customer_id if dedicated else cf_customer_id // 20,
                salt=salt,
            )
        )
        cf_customer_id += 1

    for hypergiant, per_snapshot in plan.service_present.items():
        ever = sorted(set().union(*per_snapshot.values()) if per_snapshot else set())
        for asn in ever:
            interval = _hosting_interval(plan, hypergiant, asn, service=True)
            if interval is None:
                continue
            birth, death = interval
            salt = _salt(rng)
            if hypergiant == "cloudflare":
                dedicated = salt < 0.25
                servers.append(
                    SimulatedServer(
                        ip=allocator.next_ip(asn),
                        asn=asn,
                        kind=ServerKind.CF_CUSTOMER,
                        birth=birth,
                        death=death,
                        hypergiant="cloudflare",
                        dedicated_cert=dedicated,
                        domain_group=cf_customer_id if dedicated else cf_customer_id // 20,
                        salt=salt,
                    )
                )
                cf_customer_id += 1
                continue
            if hypergiant in _MGMT_STYLE_HGS:
                kind = ServerKind.MGMT_INTERFACE
                edge = ""
            else:
                kind = ServerKind.HG_SERVICE
                edge = edge_pool[int(salt * len(edge_pool))]
            servers.append(
                SimulatedServer(
                    ip=allocator.next_ip(asn),
                    asn=asn,
                    kind=kind,
                    birth=birth,
                    death=death,
                    hypergiant=hypergiant,
                    edge_hypergiant=edge,
                    salt=salt,
                )
            )
    return servers


def _build_adversarial_servers(
    config: WorldConfig,
    topology: GeneratedTopology,
    excluded: frozenset[ASN],
    allocator: _IPAllocator,
    rng: random.Random,
) -> list[SimulatedServer]:
    """Forged-DV and shared-certificate servers (§3/§4 noise cases)."""
    servers: list[SimulatedServer] = []
    candidate_ases = sorted(topology.graph.ases - excluded)
    for index in range(config.fake_dv_servers):
        asn = rng.choice(candidate_ases)
        servers.append(
            SimulatedServer(
                ip=allocator.next_ip(asn),
                asn=asn,
                kind=ServerKind.FAKE_DV,
                birth=_staggered_birth(rng, 0.3),
                hypergiant=rng.choice(TOP4),
                domain_group=index,
                salt=_salt(rng),
            )
        )
    for index in range(config.shared_cert_servers):
        asn = rng.choice(candidate_ases)
        servers.append(
            SimulatedServer(
                ip=allocator.next_ip(asn),
                asn=asn,
                kind=ServerKind.SHARED_CERT,
                birth=_staggered_birth(rng, 0.3),
                hypergiant=rng.choice(("twitter", "microsoft", "apple")),
                domain_group=index,
                salt=_salt(rng),
            )
        )
    return servers


def _build_background_servers(
    config: WorldConfig,
    topology: GeneratedTopology,
    hg_ases: frozenset[ASN],
    allocator: _IPAllocator,
    rng: random.Random,
) -> list[SimulatedServer]:
    servers: list[SimulatedServer] = []
    site_id = 0
    for asn in sorted(topology.graph.ases - hg_ases):
        category = topology.intended_category.get(asn, ConeCategory.STUB)
        count = max(1, round(_BACKGROUND_BASE[category] * config.background_density))
        as_birth = topology.births[asn]
        for _ in range(count):
            birth = _staggered_birth(rng, _BACKGROUND_START_FRACTION)
            if birth < as_birth:
                birth = as_birth
            invalid_mode = ""
            draw = rng.random()
            if draw < config.invalid_fraction:
                slice_ = draw / config.invalid_fraction
                if slice_ < 0.5:
                    invalid_mode = "expired"
                elif slice_ < 0.8:
                    invalid_mode = "self-signed"
                else:
                    invalid_mode = "untrusted"
            servers.append(
                SimulatedServer(
                    ip=allocator.next_ip(asn),
                    asn=asn,
                    kind=ServerKind.BACKGROUND,
                    birth=birth,
                    domain_group=site_id,
                    invalid_mode=invalid_mode,
                    salt=_salt(rng),
                )
            )
            site_id += 1
    return servers
