"""A self-contained X.509-like certificate substrate.

The paper's methodology consumes certificate *metadata* — Subject
Organization, dNSNames (subjectAltName), validity window, CA flag, and the
chain of trust — so this package models exactly those parts of X.509:

* :mod:`repro.x509.certificate` — the certificate record and a builder.
* :mod:`repro.x509.authority` — certificate authorities with simulated
  signatures (HMAC-style digests over the TBS fields).
* :mod:`repro.x509.chain` — chain assembly from an end-entity certificate.
* :mod:`repro.x509.store` — a WebPKI-style trusted root/intermediate store
  (the Common CA Database substitute).
* :mod:`repro.x509.verify` — full chain verification: signature links,
  validity windows, CA flags, self-signed end-entity rejection (§4.1).
"""

from repro.x509.authority import CertificateAuthority, KeyPair, make_self_signed
from repro.x509.certificate import Certificate, SubjectName
from repro.x509.chain import CertificateChain, build_chain
from repro.x509.store import RootStore, build_web_pki
from repro.x509.verify import VerificationError, VerificationResult, verify_chain

__all__ = [
    "Certificate",
    "SubjectName",
    "CertificateAuthority",
    "KeyPair",
    "make_self_signed",
    "CertificateChain",
    "build_chain",
    "RootStore",
    "build_web_pki",
    "VerificationError",
    "VerificationResult",
    "verify_chain",
]
