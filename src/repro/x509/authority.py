"""Certificate authorities with simulated (but checkable) signatures.

Real signature verification needs big-integer crypto that adds nothing to the
reproduction, so signatures are simulated with a keyed BLAKE2 digest: a CA
signs ``cert.tbs_digest_input()`` with its private key, and a verifier who
knows the CA's *public* key can recompute the expected digest.  The scheme
keeps the essential property the pipeline relies on — a certificate chain
can only verify if every link was actually produced by the named issuer —
while remaining fast and dependency-free.

Forged certificates (e.g. a DV certificate with "Google LLC" in the
Organization field, §4.2) are modelled simply by having a *different* CA sign
them: they verify as WebPKI-valid but carry a misleading Organization, which
is exactly the attack the dNSName-subset rule defends against.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass

from repro.timeline import Snapshot
from repro.x509.certificate import Certificate, SubjectName

__all__ = ["KeyPair", "CertificateAuthority", "sign_digest"]

_serial_counter = itertools.count(1)


def sign_digest(private_key: str, message: str) -> str:
    """Simulated signature: a BLAKE2 digest keyed by the private key."""
    key_bytes = private_key.encode()[:64] or b"\x00"
    return hashlib.blake2b(message.encode(), key=key_bytes, digest_size=16).hexdigest()


@dataclass(frozen=True, slots=True)
class KeyPair:
    """A simulated asymmetric key pair.

    Verification only needs the *public* half: because
    ``private_key = "priv:" + public_key`` by construction, a verifier can
    recompute the signing key from the public identifier.  (This obviously is
    not secure cryptography; it is a deterministic stand-in with the same
    verification API shape.)
    """

    public_key: str

    @property
    def private_key(self) -> str:
        return "priv:" + self.public_key

    @classmethod
    def generate(cls, label: str) -> "KeyPair":
        digest = hashlib.blake2b(label.encode(), digest_size=12).hexdigest()
        return cls(public_key=f"key-{digest}")


def _fingerprint(tbs: str, signature: str) -> str:
    return hashlib.blake2b(f"{tbs}#{signature}".encode(), digest_size=20).hexdigest()


@dataclass(slots=True)
class CertificateAuthority:
    """An issuing authority: either a root CA or an intermediate.

    Roots are self-signed; intermediates carry the certificate their parent
    issued for them and a reference to the parent authority, so server
    chains can be assembled by walking up.  ``issue()`` produces end-entity
    (or subordinate CA) certificates signed with this authority's key.
    """

    name: str
    key: KeyPair
    certificate: Certificate
    parent: "CertificateAuthority | None" = None

    @property
    def is_root(self) -> bool:
        return self.parent is None

    def ancestors(self) -> list["CertificateAuthority"]:
        """This authority followed by its parents, root last."""
        chain: list[CertificateAuthority] = []
        node: CertificateAuthority | None = self
        while node is not None:
            chain.append(node)
            node = node.parent
        return chain

    @classmethod
    def create_root(
        cls,
        name: str,
        not_before: Snapshot,
        not_after: Snapshot,
    ) -> "CertificateAuthority":
        """Create a self-signed root CA valid over the given window."""
        key = KeyPair.generate(f"root:{name}")
        subject = SubjectName(common_name=name, organization=name)
        certificate = _build_signed(
            subject=subject,
            issuer=subject,
            dns_names=(),
            not_before=not_before,
            not_after=not_after,
            is_ca=True,
            subject_key_id=key.public_key,
            authority_key_id=key.public_key,
            signing_key=key,
            provenance=f"root-ca:{name}",
        )
        return cls(name=name, key=key, certificate=certificate, parent=None)

    def create_intermediate(
        self,
        name: str,
        not_before: Snapshot,
        not_after: Snapshot,
    ) -> "CertificateAuthority":
        """Issue a subordinate CA signed by this authority."""
        key = KeyPair.generate(f"intermediate:{self.name}:{name}")
        certificate = _build_signed(
            subject=SubjectName(common_name=name, organization=name),
            issuer=self.certificate.subject,
            dns_names=(),
            not_before=not_before,
            not_after=not_after,
            is_ca=True,
            subject_key_id=key.public_key,
            authority_key_id=self.key.public_key,
            signing_key=self.key,
            provenance=f"intermediate-ca:{name}",
        )
        return CertificateAuthority(name=name, key=key, certificate=certificate, parent=self)

    def issue(
        self,
        subject: SubjectName,
        dns_names: tuple[str, ...],
        not_before: Snapshot,
        not_after: Snapshot,
        is_ca: bool = False,
        provenance: str = "",
    ) -> Certificate:
        """Issue a certificate signed by this authority's key."""
        subject_key = KeyPair.generate(
            f"ee:{subject}:{','.join(dns_names)}:{not_before.label}:{next(_serial_counter)}"
        )
        return _build_signed(
            subject=subject,
            issuer=self.certificate.subject,
            dns_names=dns_names,
            not_before=not_before,
            not_after=not_after,
            is_ca=is_ca,
            subject_key_id=subject_key.public_key,
            authority_key_id=self.key.public_key,
            signing_key=self.key,
            provenance=provenance,
        )


def _build_signed(
    subject: SubjectName,
    issuer: SubjectName,
    dns_names: tuple[str, ...],
    not_before: Snapshot,
    not_after: Snapshot,
    is_ca: bool,
    subject_key_id: str,
    authority_key_id: str,
    signing_key: KeyPair,
    provenance: str,
) -> Certificate:
    serial = next(_serial_counter)
    unsigned = Certificate(
        fingerprint="",
        subject=subject,
        issuer=issuer,
        dns_names=dns_names,
        not_before=not_before,
        not_after=not_after,
        is_ca=is_ca,
        subject_key_id=subject_key_id,
        authority_key_id=authority_key_id,
        signature="",
        serial=serial,
        provenance=provenance,
    )
    tbs = unsigned.tbs_digest_input()
    signature = sign_digest(signing_key.private_key, tbs)
    return Certificate(
        fingerprint=_fingerprint(tbs, signature),
        subject=subject,
        issuer=issuer,
        dns_names=dns_names,
        not_before=not_before,
        not_after=not_after,
        is_ca=is_ca,
        subject_key_id=subject_key_id,
        authority_key_id=authority_key_id,
        signature=signature,
        serial=serial,
        provenance=provenance,
    )


def make_self_signed(
    subject: SubjectName,
    dns_names: tuple[str, ...],
    not_before: Snapshot,
    not_after: Snapshot,
    provenance: str = "self-signed",
) -> Certificate:
    """Create a self-signed end-entity certificate (rejected by §4.1)."""
    key = KeyPair.generate(f"selfsigned:{subject}:{','.join(dns_names)}:{not_before.label}")
    return _build_signed(
        subject=subject,
        issuer=subject,
        dns_names=dns_names,
        not_before=not_before,
        not_after=not_after,
        is_ca=False,
        subject_key_id=key.public_key,
        authority_key_id=key.public_key,
        signing_key=key,
        provenance=provenance,
    )
