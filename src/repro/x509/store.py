"""The trusted root/intermediate store — a Common CA Database substitute.

§4.1 verifies every scanned chain "against a list of well-trusted root and
intermediate certificates which form the WebPKI (extracted from the Common CA
Database)".  :class:`RootStore` is that list; :func:`build_web_pki` creates a
deterministic synthetic WebPKI with a handful of commercial root programs and
per-root intermediates, mirroring how real hypergiants obtain certificates
from a small set of public CAs (DigiCert, GlobalSign, Let's Encrypt, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.timeline import STUDY_END, STUDY_START, Snapshot
from repro.x509.authority import CertificateAuthority
from repro.x509.certificate import Certificate

__all__ = ["RootStore", "build_web_pki", "WEB_PKI_ROOT_NAMES"]

#: Synthetic stand-ins for the large commercial root programs.
WEB_PKI_ROOT_NAMES: tuple[str, ...] = (
    "Synthetic DigiCert Global Root",
    "Synthetic GlobalSign Root",
    "Synthetic ISRG Root (Let's Encrypt)",
    "Synthetic Sectigo Root",
    "Synthetic GTS Root (Google Trust Services)",
    "Synthetic Baltimore CyberTrust Root",
)


@dataclass(slots=True)
class RootStore:
    """Trusted anchors keyed by subject key identifier.

    Both roots and intermediates can be anchors (the CCADB publishes both),
    so chains missing an intermediate can still verify if that intermediate
    is independently trusted — exactly the recommendation of the prior
    studies the paper cites.
    """

    _anchors: dict[str, Certificate] = field(default_factory=dict)

    def add(self, certificate: Certificate) -> None:
        """Trust ``certificate`` as an anchor.  Only CA certs are allowed."""
        if not certificate.is_ca:
            raise ValueError("only CA certificates can be trust anchors")
        self._anchors[certificate.subject_key_id] = certificate

    def add_authority(self, authority: CertificateAuthority) -> None:
        """Trust an authority's certificate."""
        self.add(authority.certificate)

    def get(self, subject_key_id: str) -> Certificate | None:
        """The trusted anchor with this subject key id, if any."""
        return self._anchors.get(subject_key_id)

    def __contains__(self, certificate: Certificate) -> bool:
        anchored = self._anchors.get(certificate.subject_key_id)
        return anchored is not None and anchored.fingerprint == certificate.fingerprint

    def __len__(self) -> int:
        return len(self._anchors)

    def anchors(self) -> tuple[Certificate, ...]:
        """All trusted anchor certificates."""
        return tuple(self._anchors.values())


def build_web_pki(
    not_before: Snapshot = STUDY_START.plus_months(-60),
    not_after: Snapshot = STUDY_END.plus_months(120),
    intermediates_per_root: int = 2,
) -> tuple[RootStore, dict[str, CertificateAuthority]]:
    """Create the synthetic WebPKI.

    Returns the trust store plus a name → issuing-authority map.  Issuing
    authorities are the *intermediates* (as in the real WebPKI, roots rarely
    sign end-entity certificates directly); they are named
    ``"<root name> / Intermediate <n>"`` and all of them — and their roots —
    are anchored in the store.
    """
    store = RootStore()
    issuers: dict[str, CertificateAuthority] = {}
    for root_name in WEB_PKI_ROOT_NAMES:
        root = CertificateAuthority.create_root(root_name, not_before, not_after)
        store.add_authority(root)
        for index in range(1, intermediates_per_root + 1):
            name = f"{root_name} / Intermediate {index}"
            intermediate = root.create_intermediate(name, not_before, not_after)
            store.add_authority(intermediate)
            issuers[name] = intermediate
    return store, issuers
