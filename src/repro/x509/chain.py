"""Certificate chains: the ordered list a TLS server presents (§2).

A chain begins with the end-entity certificate and walks issuer links up to
(and conventionally excluding) the root, which the client is expected to hold
in its trust store.  Servers in the simulator present chains; the §4.1
validation step verifies them against the WebPKI store.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.x509.authority import CertificateAuthority
from repro.x509.certificate import Certificate

__all__ = ["CertificateChain", "build_chain"]


@dataclass(frozen=True, slots=True)
class CertificateChain:
    """An ordered certificate list: end-entity first, then intermediates.

    The root CA certificate is usually *not* shipped by servers, but chains
    that include it still verify (verification stops at the first trusted
    anchor it reaches).
    """

    certificates: tuple[Certificate, ...]

    def __post_init__(self) -> None:
        if not self.certificates:
            raise ValueError("a certificate chain cannot be empty")

    @property
    def end_entity(self) -> Certificate:
        """The leaf (server) certificate."""
        return self.certificates[0]

    @property
    def intermediates(self) -> tuple[Certificate, ...]:
        """Everything above the leaf."""
        return self.certificates[1:]

    def __len__(self) -> int:
        return len(self.certificates)

    def __iter__(self):
        return iter(self.certificates)


def build_chain(
    end_entity: Certificate,
    issuing_authority: CertificateAuthority,
    include_root: bool = False,
) -> CertificateChain:
    """Assemble the chain a server would present for ``end_entity``.

    ``issuing_authority`` must be the authority that signed the leaf.  The
    chain lists the leaf, then each ancestor authority's certificate from the
    issuer upwards.  The self-signed root is omitted unless ``include_root``
    is set, matching common server configuration.
    """
    certificates: list[Certificate] = [end_entity]
    for authority in issuing_authority.ancestors():
        if authority.is_root and not include_root:
            break
        certificates.append(authority.certificate)
    return CertificateChain(tuple(certificates))
