"""The certificate record used throughout the reproduction.

A :class:`Certificate` carries the X.509 fields the paper's methodology reads
(§2, §4): the Subject Name with its Organization entry, the authenticated
``dNSNames`` list (subjectAltName), the ``NotBefore``/``NotAfter`` validity
window, the basicConstraints CA flag, and issuer linkage via key identifiers.

Validity instants are expressed as :class:`repro.timeline.Snapshot` months;
the scan corpuses are quarterly, so month granularity matches the real
pipeline's effective resolution.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.timeline import Snapshot

__all__ = ["SubjectName", "Certificate"]


@dataclass(frozen=True, slots=True)
class SubjectName:
    """The Subject (or Issuer) distinguished name of a certificate.

    Only the fields the methodology touches are modelled.  ``organization``
    is the unvalidated, free-text ``O=`` entry the paper keys fingerprints on;
    ``common_name`` is the legacy CN.
    """

    common_name: str = ""
    organization: str = ""
    country: str = ""

    def __str__(self) -> str:
        parts = []
        if self.common_name:
            parts.append(f"CN={self.common_name}")
        if self.organization:
            parts.append(f"O={self.organization}")
        if self.country:
            parts.append(f"C={self.country}")
        return ", ".join(parts)


@dataclass(frozen=True, slots=True)
class Certificate:
    """An X.509-like certificate.

    ``fingerprint`` is a stable unique identifier (stands in for the SHA-256
    certificate hash); ``subject_key_id``/``authority_key_id`` provide the
    issuer linkage used to build chains; ``signature`` is a simulated
    signature over the TBS fields, checkable with the issuer's key.
    """

    fingerprint: str
    subject: SubjectName
    issuer: SubjectName
    dns_names: tuple[str, ...]
    not_before: Snapshot
    not_after: Snapshot
    is_ca: bool
    subject_key_id: str
    authority_key_id: str
    signature: str
    serial: int = 0
    #: Free-form provenance label (e.g. "google-offnet") used only by tests
    #: and ground-truth bookkeeping — the inference pipeline never reads it.
    provenance: str = field(default="", compare=False)

    @property
    def is_self_signed(self) -> bool:
        """True when the certificate is signed by its own key (§4.1 drops
        self-signed end-entity certificates)."""
        return self.subject_key_id == self.authority_key_id

    def is_valid_at(self, when: Snapshot) -> bool:
        """True when ``when`` falls inside the NotBefore/NotAfter window."""
        return self.not_before <= when <= self.not_after

    @property
    def validity_months(self) -> int:
        """Length of the validity window in months (A.3 expiry analysis)."""
        return self.not_after.months_since(self.not_before)

    def tbs_digest_input(self) -> str:
        """Canonical serialisation of the to-be-signed fields.

        The simulated signature is a digest of this string keyed by the
        issuer's private key; verification recomputes it (see
        :mod:`repro.x509.authority`).
        """
        return "|".join(
            (
                str(self.subject),
                str(self.issuer),
                ",".join(self.dns_names),
                self.not_before.label,
                self.not_after.label,
                "CA" if self.is_ca else "EE",
                self.subject_key_id,
                self.authority_key_id,
                str(self.serial),
            )
        )

    def __str__(self) -> str:
        kind = "CA" if self.is_ca else "EE"
        return f"<{kind} cert {self.fingerprint[:12]} subject=({self.subject})>"
