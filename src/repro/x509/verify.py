"""Certificate chain verification — the §4.1 validity gate.

The paper keeps only certificates that

* chain to the WebPKI (root *and* intermediate signatures verify),
* were inside their NotBefore/NotAfter window when scanned, and
* are not self-signed end-entity certificates.

During the study "more than one third of the hosts returned invalid
certificates" — the synthetic world reproduces that mix and this module
rejects it the same way.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.timeline import Snapshot
from repro.x509.authority import sign_digest
from repro.x509.certificate import Certificate
from repro.x509.chain import CertificateChain
from repro.x509.store import RootStore

__all__ = ["VerificationError", "VerificationResult", "verify_chain"]


class VerificationError(enum.Enum):
    """Why a chain failed verification."""

    EXPIRED = "certificate outside its validity window"
    NOT_YET_VALID = "certificate not yet valid"
    SELF_SIGNED = "self-signed end-entity certificate"
    BAD_SIGNATURE = "signature does not verify against the issuer key"
    UNTRUSTED = "chain does not terminate at a trusted anchor"
    NOT_A_CA = "intermediate certificate lacks the CA flag"
    BROKEN_LINK = "issuer linkage between consecutive certificates is broken"
    EMPTY = "empty chain"


@dataclass(frozen=True, slots=True)
class VerificationResult:
    """Outcome of verifying one chain at one point in time."""

    ok: bool
    error: VerificationError | None = None
    #: Which trusted anchor terminated the chain (when ok).
    anchor: Certificate | None = None

    def __bool__(self) -> bool:
        return self.ok


def _signature_ok(certificate: Certificate, issuer_key_id: str) -> bool:
    """Recompute the simulated signature with the issuer's key."""
    expected = sign_digest("priv:" + issuer_key_id, certificate.tbs_digest_input())
    return certificate.signature == expected


def verify_chain(
    chain: CertificateChain,
    store: RootStore,
    when: Snapshot,
) -> VerificationResult:
    """Verify ``chain`` against ``store`` as of snapshot ``when``.

    Walks from the end-entity certificate upward.  Each certificate must be
    inside its validity window; each link's signature must verify with the
    next certificate's key; the walk must reach a trusted anchor (either a
    chain member that is anchored, or an anchor found in the store by the
    last certificate's authority key id).  Self-signed end-entity
    certificates are rejected outright (§4.1).
    """
    certificates = chain.certificates
    leaf = certificates[0]

    if leaf.is_self_signed and not leaf.is_ca:
        return VerificationResult(False, VerificationError.SELF_SIGNED)

    for certificate in certificates:
        if when < certificate.not_before:
            return VerificationResult(False, VerificationError.NOT_YET_VALID)
        if when > certificate.not_after:
            return VerificationResult(False, VerificationError.EXPIRED)

    # Every certificate above the leaf must be a CA certificate.
    for certificate in certificates[1:]:
        if not certificate.is_ca:
            return VerificationResult(False, VerificationError.NOT_A_CA)

    # Verify each in-chain link: child signed by the next certificate's key.
    for child, parent in zip(certificates, certificates[1:]):
        if child.authority_key_id != parent.subject_key_id:
            return VerificationResult(False, VerificationError.BROKEN_LINK)
        if not _signature_ok(child, parent.subject_key_id):
            return VerificationResult(False, VerificationError.BAD_SIGNATURE)

    # Find the trust anchor.  Any in-chain certificate that is itself
    # anchored terminates the walk; otherwise the topmost certificate's
    # issuer must be an anchor in the store.
    for certificate in certificates:
        if certificate in store:
            return VerificationResult(True, anchor=certificate)

    top = certificates[-1]
    anchor = store.get(top.authority_key_id)
    if anchor is None:
        return VerificationResult(False, VerificationError.UNTRUSTED)
    if when > anchor.not_after or when < anchor.not_before:
        return VerificationResult(False, VerificationError.EXPIRED)
    if not _signature_ok(top, anchor.subject_key_id):
        return VerificationResult(False, VerificationError.BAD_SIGNATURE)
    return VerificationResult(True, anchor=anchor)
