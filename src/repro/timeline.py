"""Study timeline: quarterly snapshots from October 2013 to April 2021.

The paper analyses one Rapid7 certificate corpus every three months between
October 2013 and April 2021 (31 snapshots), supplemented with Censys corpuses
from November 2019 onwards.  This module provides the :class:`Snapshot` value
type used throughout the library to index longitudinal data, plus the named
event dates that drive the hypergiant deployment model (Facebook's CDN launch,
Netflix's expired-certificate era, the availability of HTTPS header corpuses,
and so on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = [
    "Snapshot",
    "ordered_snapshots",
    "STUDY_SNAPSHOTS",
    "STUDY_START",
    "STUDY_END",
    "HTTPS_HEADERS_AVAILABLE",
    "CENSYS_AVAILABLE",
    "FACEBOOK_CDN_LAUNCH",
    "NETFLIX_EXPIRED_ERA",
    "NETFLIX_HTTP_ERA",
    "ALIBABA_LAUNCH",
    "COVID_SLOWDOWN",
    "snapshot_range",
]


@dataclass(frozen=True, order=True, slots=True)
class Snapshot:
    """A quarterly measurement snapshot, identified by year and month.

    Snapshots are totally ordered and hashable, so they can index dicts and
    be compared directly (``Snapshot(2016, 7) < Snapshot(2017, 1)``).
    """

    year: int
    month: int

    def __post_init__(self) -> None:
        if not 1 <= self.month <= 12:
            raise ValueError(f"month out of range: {self.month}")

    @property
    def label(self) -> str:
        """The ``YYYY-MM`` label used in the paper's figures."""
        return f"{self.year}-{self.month:02d}"

    @property
    def index(self) -> int:
        """Months since year 0 — convenient for arithmetic."""
        return self.year * 12 + (self.month - 1)

    def months_since(self, other: "Snapshot") -> int:
        """Signed number of months from ``other`` to this snapshot."""
        return self.index - other.index

    def plus_months(self, months: int) -> "Snapshot":
        """The snapshot ``months`` months later (negative moves earlier)."""
        total = self.index + months
        return Snapshot(total // 12, total % 12 + 1)

    @classmethod
    def parse(cls, label: str) -> "Snapshot":
        """Parse a ``YYYY-MM`` label back into a snapshot."""
        year_text, sep, month_text = label.strip().partition("-")
        if not sep or not year_text.isdigit() or not month_text.isdigit():
            raise ValueError(f"snapshot label must look like YYYY-MM, got {label!r}")
        return cls(int(year_text), int(month_text))

    def __str__(self) -> str:
        return self.label


def ordered_snapshots(labels: "Iterable[str]") -> tuple[Snapshot, ...]:
    """Parse ``YYYY-MM`` labels into a sorted, deduplicated snapshot tuple.

    This is the one place label strings become a timeline: the CLI, the
    file-dataset manifest reader, and the serve watcher all order their
    snapshots through it, so an incremental ingest can never disagree
    with a batch run about what "the corpus's snapshots" means.
    """
    return tuple(sorted({Snapshot.parse(label) for label in labels}))


def snapshot_range(start: Snapshot, end: Snapshot, step_months: int = 3) -> Iterator[Snapshot]:
    """Yield snapshots from ``start`` to ``end`` inclusive, every ``step_months``."""
    if step_months <= 0:
        raise ValueError("step_months must be positive")
    current = start
    while current <= end:
        yield current
        current = current.plus_months(step_months)


STUDY_START = Snapshot(2013, 10)
STUDY_END = Snapshot(2021, 4)

#: The 31 quarterly snapshots of the study period (Oct. 2013 - Apr. 2021).
STUDY_SNAPSHOTS: tuple[Snapshot, ...] = tuple(snapshot_range(STUDY_START, STUDY_END))

#: Rapid7 publishes HTTPS header corpuses from July 2016 ("Summer 2016", §6.2).
HTTPS_HEADERS_AVAILABLE = Snapshot(2016, 7)

#: Censys corpuses are used from October/November 2019 (§4.6).
CENSYS_AVAILABLE = Snapshot(2019, 10)

#: Facebook launched its own CDN in the summer of 2016 (§6.2).
FACEBOOK_CDN_LAUNCH = Snapshot(2016, 7)

#: Netflix servers responded with an expired default certificate (§6.2).
NETFLIX_EXPIRED_ERA = (Snapshot(2017, 4), Snapshot(2019, 10))

#: A fraction of Netflix off-nets served HTTP (port 80) only (§6.2).
NETFLIX_HTTP_ERA = (Snapshot(2017, 10), Snapshot(2019, 10))

#: Alibaba's CDN launched in late 2014 (§6.4).
ALIBABA_LAUNCH = Snapshot(2014, 10)

#: COVID-19 slowdown window: deployments stall, then pick up (§6.4, A.7).
COVID_SLOWDOWN = (Snapshot(2020, 1), Snapshot(2020, 7))
