"""Host-AS demographics — Figures 5 and 13, and the §6.3 census.

The paper buckets hypergiant host ASes by customer-cone size and contrasts
the mix with the Internet-wide census (stubs ~85% of all ASes but only
~27-31% of Google/Netflix/Facebook hosts; large+xlarge <0.5% of ASes but
>5% of hosts, >16% for Akamai).
"""

from __future__ import annotations

from repro.core.footprint_index import FootprintIndex
from repro.timeline import Snapshot
from repro.topology.categories import ConeCategory
from repro.topology.generator import GeneratedTopology
from repro.topology.geography import Continent

__all__ = [
    "footprint_by_category",
    "internet_category_shares",
    "category_share_table",
    "region_type_series",
]


def footprint_by_category(
    result: FootprintIndex,
    topology: GeneratedTopology,
    hypergiant: str,
) -> dict[Snapshot, dict[ConeCategory, int]]:
    """Figure 5: per snapshot, the HG's host ASes bucketed by cone size.

    Uses the effective footprint (the Netflix envelope for Netflix).
    """
    series: dict[Snapshot, dict[ConeCategory, int]] = {}
    for snapshot in result.snapshots:
        counts = {category: 0 for category in ConeCategory}
        for asn in result.effective_footprint(hypergiant, snapshot):
            if not topology.is_alive(asn, snapshot):
                continue
            counts[topology.category_at(asn, snapshot)] += 1
        series[snapshot] = counts
    return series


def internet_category_shares(
    topology: GeneratedTopology, snapshot: Snapshot
) -> dict[ConeCategory, float]:
    """The Internet-wide census shares at ``snapshot`` (§6.3 baseline)."""
    counts = topology.category_counts_at(snapshot)
    total = sum(counts.values()) or 1
    return {category: count / total for category, count in counts.items()}


def category_share_table(
    result: FootprintIndex,
    topology: GeneratedTopology,
    hypergiants: tuple[str, ...],
    snapshot: Snapshot,
) -> dict[str, dict[ConeCategory, float]]:
    """§6.3's comparison: per HG, the share of its hosts per category,
    with the Internet census under the ``"internet"`` key."""
    table: dict[str, dict[ConeCategory, float]] = {
        "internet": internet_category_shares(topology, snapshot)
    }
    for hypergiant in hypergiants:
        counts = {category: 0 for category in ConeCategory}
        hosts = result.effective_footprint(hypergiant, snapshot)
        for asn in hosts:
            if topology.is_alive(asn, snapshot):
                counts[topology.category_at(asn, snapshot)] += 1
        total = sum(counts.values()) or 1
        table[hypergiant] = {c: n / total for c, n in counts.items()}
    return table


def region_type_series(
    result: FootprintIndex,
    topology: GeneratedTopology,
    hypergiant: str,
    category: ConeCategory,
) -> dict[Continent, list[int]]:
    """Figure 13: one HG × one network type, host counts per continent
    across ``result.snapshots``."""
    series: dict[Continent, list[int]] = {continent: [] for continent in Continent}
    for snapshot in result.snapshots:
        counts = {continent: 0 for continent in Continent}
        for asn in result.effective_footprint(hypergiant, snapshot):
            if not topology.is_alive(asn, snapshot):
                continue
            if topology.category_at(asn, snapshot) is not category:
                continue
            country = topology.countries.get(asn)
            if country is not None:
                counts[country.continent] += 1
        for continent in Continent:
            series[continent].append(counts[continent])
    return series
