"""Table 3 — the headline per-HG footprint table (§6.1).

For each hypergiant with a nonzero footprint: the confirmed and
certificate-only AS counts at the study's start and end, plus the maximum
confirmed footprint and when it occurred.  Rows are sorted by the maximum,
exactly like the paper's ranking.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.footprint_index import FootprintIndex
from repro.timeline import Snapshot

__all__ = ["Table3Row", "build_table3"]


@dataclass(frozen=True, slots=True)
class Table3Row:
    """One Table 3 row (confirmed counts with certs-only in parentheses)."""

    hypergiant: str
    start_confirmed: int
    start_certs_only: int
    max_confirmed: int
    max_snapshot: Snapshot
    end_confirmed: int
    end_certs_only: int

    def format(self) -> tuple[str, str, str, str]:
        """(name, "start (certs)", "max [when]", "end (certs)")."""
        return (
            self.hypergiant,
            f"{self.start_confirmed} ({self.start_certs_only})",
            f"{self.max_confirmed} [{self.max_snapshot}]",
            f"{self.end_confirmed} ({self.end_certs_only})",
        )


def build_table3(result: FootprintIndex) -> list[Table3Row]:
    """Assemble Table 3 from a footprint index (or batch result).

    The Netflix row uses the §6.2 envelope for the confirmed counts (as the
    paper does after its manual investigation); certs-only columns stay raw.
    HGs whose confirmed footprint never exceeds zero are excluded, like the
    bottom half of the examined list.
    """
    start, end = result.snapshots[0], result.snapshots[-1]
    rows: list[Table3Row] = []
    # Cert-only footprints can exist without any confirmation (e.g. Apple):
    # the paper still lists them when the *max* confirmed count was nonzero,
    # so consider every HG with candidates anywhere.
    hypergiants = set(result.hypergiants()) | set(result.hypergiants("candidates"))

    for hypergiant in sorted(hypergiants):
        sizes = [
            (len(result.effective_footprint(hypergiant, snapshot)), snapshot)
            for snapshot in result.snapshots
        ]
        max_confirmed, max_snapshot = max(sizes, key=lambda pair: (pair[0], -pair[1].index))
        if max_confirmed == 0 and result.as_count(hypergiant, end, "candidates") == 0:
            continue
        rows.append(
            Table3Row(
                hypergiant=hypergiant,
                start_confirmed=len(result.effective_footprint(hypergiant, start)),
                start_certs_only=result.as_count(hypergiant, start, "candidates"),
                max_confirmed=max_confirmed,
                max_snapshot=max_snapshot,
                end_confirmed=len(result.effective_footprint(hypergiant, end)),
                end_certs_only=result.as_count(hypergiant, end, "candidates"),
            )
        )
    rows.sort(key=lambda row: (-row.max_confirmed, row.hypergiant))
    return rows
