"""Per-hypergiant deployment strategy indicators (§6.1, §5).

The paper stresses that HGs differ structurally, not just in size:

* IP-per-AS density varies by an order of magnitude (Akamai ~88 IPs per
  host AS in the authors' scan vs Facebook ~20) — so "the absolute number
  of IP addresses is not relevant to the size ... of the corresponding
  HGs' off-nets";
* some HGs' certificate-only footprints vastly exceed their hardware
  footprints (Apple, Twitter: third-party delivery; Amazon, Microsoft:
  on-premise appliances);
* some HGs rely on their own metal everywhere, others only regionally
  (Alibaba: own servers in Asia, other HGs elsewhere).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.footprint_index import FootprintIndex
from repro.timeline import Snapshot

__all__ = ["StrategyIndicators", "strategy_indicators"]


@dataclass(frozen=True, slots=True)
class StrategyIndicators:
    """One HG's §6.1 strategy row at a snapshot."""

    hypergiant: str
    snapshot: Snapshot
    offnet_ips: int
    offnet_ases: int
    certs_only_ases: int
    onnet_ips: int

    @property
    def ips_per_as(self) -> float:
        """Off-net IP density — Akamai ≫ Facebook in the paper."""
        return 0.0 if self.offnet_ases == 0 else self.offnet_ips / self.offnet_ases

    @property
    def hardware_fraction(self) -> float:
        """Share of the certificate footprint backed by the HG's own metal
        (≈1.0 for Google/Akamai; ≪1 for Apple/Twitter, §6.1)."""
        if self.certs_only_ases == 0:
            return 1.0
        return min(1.0, self.offnet_ases / self.certs_only_ases)


def strategy_indicators(
    result: FootprintIndex, hypergiant: str, snapshot: Snapshot
) -> StrategyIndicators:
    """Compute the §6.1 indicators for one HG from a pipeline result."""
    footprint = result.at(snapshot)
    return StrategyIndicators(
        hypergiant=hypergiant,
        snapshot=snapshot,
        offnet_ips=len(footprint.confirmed_ips.get(hypergiant, ())),
        offnet_ases=len(footprint.confirmed_ases.get(hypergiant, ())),
        certs_only_ases=len(footprint.candidate_ases.get(hypergiant, ())),
        onnet_ips=len(footprint.onnet_ips.get(hypergiant, ())),
    )
