"""CSV export of every figure's data series.

The benchmark harness prints figures as aligned text; this module writes
the same series as CSV files so they can be re-plotted with any external
tool.  One file per exhibit, one row per snapshot (or per country for the
coverage maps), header row first.
"""

from __future__ import annotations

import csv
from pathlib import Path

from repro.analysis.coverage import cone_country_coverage, country_coverage
from repro.analysis.demographics import footprint_by_category
from repro.analysis.growth import ip_count_series, top4_growth
from repro.analysis.overlap import top4_multiplicity
from repro.analysis.regions import regional_growth
from repro.core.footprint_index import FootprintIndex
from repro.hypergiants.profiles import TOP4
from repro.topology.categories import ConeCategory
from repro.topology.generator import GeneratedTopology
from repro.topology.geography import Continent

__all__ = ["export_all_csv"]


def _write(path: Path, headers: list[str], rows: list[list]) -> None:
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def export_all_csv(
    result: FootprintIndex,
    topology: GeneratedTopology,
    directory: str | Path,
) -> list[Path]:
    """Write the Figure 2/3/5/6/7/10 series as CSV files; returns paths."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    labels = [s.label for s in result.snapshots]

    # Figure 2.
    points = ip_count_series(result)
    path = directory / "fig2_ip_counts.csv"
    _write(
        path,
        ["snapshot", "ips_with_certs", "pct_hg_onnet", "pct_hg_offnet", "invalid_fraction"],
        [
            [p.snapshot.label, p.raw_ip_count, round(p.pct_hg_onnet, 3),
             round(p.pct_hg_offnet, 3), round(p.invalid_fraction, 3)]
            for p in points
        ],
    )
    written.append(path)

    # Figure 3.
    growth = top4_growth(result)
    path = directory / "fig3_growth.csv"
    _write(
        path,
        ["snapshot"] + list(growth),
        [[label] + [series[i] for series in growth.values()] for i, label in enumerate(labels)],
    )
    written.append(path)

    # Figure 5 (one file per top-4 HG).
    for hypergiant in TOP4:
        by_category = footprint_by_category(result, topology, hypergiant)
        path = directory / f"fig5_conesize_{hypergiant}.csv"
        _write(
            path,
            ["snapshot"] + [c.value for c in ConeCategory],
            [
                [s.label] + [by_category[s][c] for c in ConeCategory]
                for s in result.snapshots
            ],
        )
        written.append(path)

    # Figure 6 (one file per continent).
    per_region = regional_growth(result, topology, TOP4)
    for continent in Continent:
        path = directory / f"fig6_{continent.name.lower()}.csv"
        _write(
            path,
            ["snapshot"] + list(TOP4),
            [
                [label] + [per_region[continent][hg][i] for hg in TOP4]
                for i, label in enumerate(labels)
            ],
        )
        written.append(path)

    # Figures 7/8: per-country coverage at the final snapshot.
    end = result.snapshots[-1]
    try:
        rows = []
        for hypergiant in ("google", "netflix", "akamai", "facebook"):
            direct = country_coverage(result, topology, hypergiant, end)
            cones = cone_country_coverage(result, topology, hypergiant, end)
            for code in sorted(direct):
                rows.append([hypergiant, code, round(direct[code], 2), round(cones.get(code, 0.0), 2)])
        path = directory / "fig7_coverage.csv"
        _write(path, ["hypergiant", "country", "pct_direct", "pct_with_cones"], rows)
        written.append(path)
    except ValueError:
        pass  # population data horizon not reached by this result

    # Figure 10.
    path = directory / "fig10_overlap.csv"
    _write(
        path,
        ["snapshot", "hosting_1", "hosting_2", "hosting_3", "hosting_4"],
        [
            [s.label] + [top4_multiplicity(result, s)[k] for k in (1, 2, 3, 4)]
            for s in result.snapshots
        ],
    )
    written.append(path)
    return written
