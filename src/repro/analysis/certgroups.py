"""Certificate population analyses — Figure 11 and Appendix A.3.

* Figure 11: for one HG, the share of its certificate-serving IPs behind
  each of the top-10 certificates (IP groups) per snapshot — Google stays
  heavily aggregated (the ``*.googlevideo.com`` group covers >50%),
  Facebook disaggregates over time.
* Appendix A.3: certificate counts and median validity periods per HG.
"""

from __future__ import annotations

from collections import Counter

from repro.core.footprint_index import FootprintIndex
from repro.scan.records import ScanSnapshot
from repro.timeline import Snapshot

__all__ = ["certificate_ip_groups", "validity_medians", "certificate_count"]


def _hg_ips(result: FootprintIndex, hypergiant: str, snapshot: Snapshot) -> frozenset[int]:
    footprint = result.at(snapshot)
    onnet = footprint.onnet_ips.get(hypergiant, frozenset())
    offnet = footprint.candidate_ips.get(hypergiant, frozenset())
    return onnet | offnet


def certificate_ip_groups(
    result: FootprintIndex,
    scan: ScanSnapshot,
    hypergiant: str,
    top: int = 10,
) -> list[float]:
    """Figure 11: % of the HG's certificate-serving IPs per top-``top``
    certificate at ``scan.snapshot`` (descending)."""
    ips = _hg_ips(result, hypergiant, scan.snapshot)
    if not ips:
        return []
    groups: Counter = Counter()
    total = 0
    for record in scan.tls_records:
        if record.ip in ips:
            groups[record.chain.end_entity.fingerprint] += 1
            total += 1
    if total == 0:
        return []
    return [count / total * 100.0 for _, count in groups.most_common(top)]


def certificate_count(
    result: FootprintIndex, scan: ScanSnapshot, hypergiant: str
) -> int:
    """Number of distinct certificates the HG serves at a snapshot (A.3)."""
    ips = _hg_ips(result, hypergiant, scan.snapshot)
    return len(
        {
            record.chain.end_entity.fingerprint
            for record in scan.tls_records
            if record.ip in ips
        }
    )


def validity_medians(
    result: FootprintIndex, scan: ScanSnapshot, hypergiant: str
) -> float:
    """Median certificate validity period in months (A.3's expiry study:
    Google ~3 months; Netflix dropping to ~1 month within 2019)."""
    ips = _hg_ips(result, hypergiant, scan.snapshot)
    durations = sorted(
        record.chain.end_entity.validity_months
        for record in scan.tls_records
        if record.ip in ips
    )
    if not durations:
        return 0.0
    middle = len(durations) // 2
    if len(durations) % 2:
        return float(durations[middle])
    return (durations[middle - 1] + durations[middle]) / 2.0
