"""Internet user population coverage — Figures 7, 8, 9, 12 (§6.5, A.6).

Coverage of a country = sum of the APNIC-style market shares of that
country's ASes that host the HG's off-nets.  The *customer cone* variant
additionally counts users inside the customer cones of hosting ASes (a HG
can serve a hosting AS's customers through the same off-net).
"""

from __future__ import annotations

from repro.core.footprint_index import FootprintIndex
from repro.net.asn import ASN
from repro.timeline import Snapshot
from repro.topology.generator import GeneratedTopology

__all__ = [
    "country_coverage",
    "cone_country_coverage",
    "worldwide_coverage",
    "coverage_increase",
    "top_missing_ases",
]


def _hosting_ases(
    result: FootprintIndex, hypergiant: str, snapshot: Snapshot
) -> frozenset[ASN]:
    return result.effective_footprint(hypergiant, snapshot)


def _expand_with_cones(
    topology: GeneratedTopology, hosting: frozenset[ASN], snapshot: Snapshot
) -> frozenset[ASN]:
    expanded: set[ASN] = set()
    alive = topology.alive(snapshot)
    for asn in hosting:
        if asn not in alive:
            continue
        expanded.update(member for member in topology.cone_members(asn) if member in alive)
    return frozenset(expanded)


def country_coverage(
    result: FootprintIndex,
    topology: GeneratedTopology,
    hypergiant: str,
    snapshot: Snapshot,
) -> dict[str, float]:
    """Figure 7/9: country code → % of that country's users covered."""
    view = topology.population.monthly_view(snapshot)
    return view.country_coverage(_hosting_ases(result, hypergiant, snapshot))


def cone_country_coverage(
    result: FootprintIndex,
    topology: GeneratedTopology,
    hypergiant: str,
    snapshot: Snapshot,
) -> dict[str, float]:
    """Figure 8/12: coverage when off-nets also serve the hosting ASes'
    customer cones."""
    view = topology.population.monthly_view(snapshot)
    hosting = _hosting_ases(result, hypergiant, snapshot)
    return view.country_coverage(_expand_with_cones(topology, hosting, snapshot))


def worldwide_coverage(
    result: FootprintIndex,
    topology: GeneratedTopology,
    hypergiant: str,
    snapshot: Snapshot,
    include_cones: bool = False,
) -> float:
    """User-weighted worldwide coverage % (e.g. Google 57.8% → 68.2% with
    cones in the paper)."""
    view = topology.population.monthly_view(snapshot)
    hosting = _hosting_ases(result, hypergiant, snapshot)
    if include_cones:
        hosting = _expand_with_cones(topology, hosting, snapshot)
    return view.worldwide_coverage(hosting)


def coverage_increase(
    result: FootprintIndex,
    topology: GeneratedTopology,
    hypergiant: str,
    early: Snapshot,
    late: Snapshot,
) -> tuple[float, float]:
    """(worldwide coverage at ``early``, at ``late``) — the Figure 9 deltas."""
    return (
        worldwide_coverage(result, topology, hypergiant, early),
        worldwide_coverage(result, topology, hypergiant, late),
    )


def top_missing_ases(
    result: FootprintIndex,
    topology: GeneratedTopology,
    hypergiant: str,
    snapshot: Snapshot,
    country_code: str,
    limit: int = 5,
) -> list[tuple[ASN, float]]:
    """§6.5's what-if: the non-hosting ASes of a country whose adoption
    would raise the HG's coverage the most (the paper's "Facebook could
    increase US coverage from 33.9% to 61.8% with 5 ASes")."""
    view = topology.population.monthly_view(snapshot)
    hosting = _hosting_ases(result, hypergiant, snapshot)
    missing = [
        (entry.asn, entry.market_share * 100.0)
        for entry in view.entries
        if entry.country.code == country_code and entry.asn not in hosting
    ]
    missing.sort(key=lambda pair: (-pair[1], pair[0]))
    return missing[:limit]
