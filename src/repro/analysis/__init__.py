"""Evaluation-section analyses: every table and figure of §5/§6 + appendix.

Each module maps to specific exhibits (see DESIGN.md's experiment index):

* :mod:`repro.analysis.growth` — Figures 2, 3, 4.
* :mod:`repro.analysis.demographics` — Figures 5, 13 and the §6.3 census.
* :mod:`repro.analysis.regions` — Figure 6.
* :mod:`repro.analysis.coverage` — Figures 7, 8, 9, 12 (§6.5, A.6).
* :mod:`repro.analysis.overlap` — Figures 10, 14 (§6.6, A.8).
* :mod:`repro.analysis.certgroups` — Figure 11, Appendix A.3.
* :mod:`repro.analysis.comparison` — Table 2 (§5).
* :mod:`repro.analysis.tables` — Table 3 (§6.1).
* :mod:`repro.analysis.report` — plain-text table/series rendering.
"""

from repro.analysis.comparison import ScannerComparison, compare_scanners
from repro.analysis.coverage import cone_country_coverage, country_coverage, worldwide_coverage
from repro.analysis.demographics import (
    footprint_by_category,
    internet_category_shares,
    region_type_series,
)
from repro.analysis.growth import dataset_comparison, ip_count_series, top4_growth
from repro.analysis.overlap import persistence_distribution, stable_host_distribution, top4_multiplicity
from repro.analysis.regions import regional_growth
from repro.analysis.certgroups import certificate_ip_groups, validity_medians
from repro.analysis.tables import Table3Row, build_table3
from repro.analysis.report import render_series, render_table

__all__ = [
    "ip_count_series",
    "top4_growth",
    "dataset_comparison",
    "footprint_by_category",
    "internet_category_shares",
    "region_type_series",
    "regional_growth",
    "country_coverage",
    "cone_country_coverage",
    "worldwide_coverage",
    "top4_multiplicity",
    "stable_host_distribution",
    "persistence_distribution",
    "certificate_ip_groups",
    "validity_medians",
    "ScannerComparison",
    "compare_scanners",
    "Table3Row",
    "build_table3",
    "render_table",
    "render_series",
]
