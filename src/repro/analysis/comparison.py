"""Scan-corpus comparison — Table 2 (§5).

For one snapshot (the paper: November 2019) the three corpuses are compared
on: IPs with certificates, ASes with certificates, ASes unique to the
corpus, ASes with any HG certificate, and per-HG AS counts for the top-4.
All counts here are certificate-level (candidates), matching the table.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.footprint_index import FootprintIndex
from repro.hypergiants.profiles import TOP4
from repro.net.asn import ASN
from repro.timeline import Snapshot

__all__ = ["ScannerComparison", "compare_scanners"]


@dataclass(frozen=True, slots=True)
class ScannerComparison:
    """One Table 2 row."""

    scanner: str
    snapshot: Snapshot
    ips_with_certs: int
    ases_with_certs: int
    ases_unique: int
    ases_with_any_hg: int
    per_hg: dict[str, int]


def _ases_with_certs(world, corpus: str, snapshot: Snapshot) -> frozenset[ASN]:
    scan = world.scan(corpus, snapshot)
    ip2as = world.ip2as(snapshot)
    ases: set[ASN] = set()
    for record in scan.tls_records:
        ases |= ip2as.lookup(record.ip)
    return frozenset(ases)


def compare_scanners(
    world,
    results: dict[str, FootprintIndex],
    snapshot: Snapshot,
) -> list[ScannerComparison]:
    """Build Table 2 rows for every corpus in ``results`` at ``snapshot``."""
    cert_ases = {
        corpus: _ases_with_certs(world, corpus, snapshot) for corpus in results
    }
    rows: list[ScannerComparison] = []
    for corpus, result in results.items():
        footprint = result.at(snapshot)
        others: set[ASN] = set()
        for other_corpus, ases in cert_ases.items():
            if other_corpus != corpus:
                others |= ases
        any_hg: set[ASN] = set()
        for ases in footprint.candidate_ases.values():
            any_hg |= ases
        rows.append(
            ScannerComparison(
                scanner=corpus,
                snapshot=snapshot,
                ips_with_certs=footprint.raw_ip_count,
                ases_with_certs=len(cert_ases[corpus]),
                ases_unique=len(cert_ases[corpus] - others),
                ases_with_any_hg=len(any_hg),
                per_hg={
                    hg: len(footprint.candidate_ases.get(hg, frozenset())) for hg in TOP4
                },
            )
        )
    return rows
