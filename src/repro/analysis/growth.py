"""Longitudinal growth analyses — Figures 2, 3, and 4.

* Figure 2: IPs with certificates per snapshot, and the share holding a
  hypergiant certificate split by on-net vs off-net location.
* Figure 3: the top-4 off-net AS footprints over time, with the three
  Netflix variants.
* Figure 4: dataset sensitivity — Rapid7 vs Censys, certs-only vs
  certs+headers (or/and).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.footprint_index import FootprintIndex
from repro.core.netflix import restore_netflix
from repro.hypergiants.profiles import TOP4
from repro.timeline import Snapshot

__all__ = ["IPCountPoint", "ip_count_series", "top4_growth", "dataset_comparison"]


@dataclass(frozen=True, slots=True)
class IPCountPoint:
    """One Figure 2 data point."""

    snapshot: Snapshot
    raw_ip_count: int
    pct_hg_onnet: float
    pct_hg_offnet: float
    invalid_fraction: float


def ip_count_series(result: FootprintIndex) -> list[IPCountPoint]:
    """The Figure 2 series for one corpus."""
    points: list[IPCountPoint] = []
    for snapshot in result.snapshots:
        footprint = result.at(snapshot)
        points.append(
            IPCountPoint(
                snapshot=snapshot,
                raw_ip_count=footprint.raw_ip_count,
                pct_hg_onnet=footprint.hg_ip_share_onnet(),
                pct_hg_offnet=footprint.hg_ip_share_offnet(),
                invalid_fraction=footprint.validation.invalid_fraction,
            )
        )
    return points


def top4_growth(result: FootprintIndex) -> dict[str, list[int]]:
    """Figure 3's series: google/facebook/akamai confirmed counts plus the
    three Netflix lines, all on ``result.snapshots``."""
    series: dict[str, list[int]] = {}
    for hypergiant in ("google", "facebook", "akamai"):
        series[hypergiant] = [count for _, count in result.series(hypergiant, "confirmed")]
    envelope = restore_netflix(result)
    series["netflix (initial)"] = list(envelope.initial)
    series["netflix (w/ expired)"] = list(envelope.with_expired)
    series["netflix (w/ expired, non-tls)"] = list(envelope.with_expired_nontls)
    return series


def dataset_comparison(
    results: dict[str, FootprintIndex],
    hypergiant: str,
) -> dict[str, list[tuple[Snapshot, int]]]:
    """Figure 4's series for one HG: per corpus, certs-only and the two
    header-confirmation modes.  Keys look like ``"R7 - Only Certs"``."""
    label = {"rapid7": "R7", "censys": "CS", "certigo": "AC"}
    series: dict[str, list[tuple[Snapshot, int]]] = {}
    for corpus, result in results.items():
        prefix = label.get(corpus, corpus)
        series[f"{prefix} - Only Certs"] = result.series(hypergiant, "candidates")
        series[f"{prefix} - Certs & (HTTP or HTTPS)"] = result.series(hypergiant, "confirmed")
        series[f"{prefix} - Certs & (HTTP & HTTPS)"] = result.series(
            hypergiant, "confirmed_and"
        )
    return series


def top4_effective_counts(result: FootprintIndex, snapshot: Snapshot) -> dict[str, int]:
    """Effective (envelope-corrected) footprint sizes of the top-4 HGs."""
    return {
        hypergiant: len(result.effective_footprint(hypergiant, snapshot))
        for hypergiant in TOP4
    }


def quarterly_additions(result: FootprintIndex, hypergiant: str) -> list[tuple[Snapshot, int]]:
    """Net new host ASes per quarter — the §6.4 growth-rate view.

    The COVID-19 slowdown shows as depressed additions through 2020-H1
    followed by reacceleration in late 2020 / early 2021.
    """
    series = [
        len(result.effective_footprint(hypergiant, snapshot))
        for snapshot in result.snapshots
    ]
    return [
        (snapshot, series[index] - series[index - 1])
        for index, snapshot in enumerate(result.snapshots)
        if index > 0
    ]


def covid_slowdown(result: FootprintIndex, hypergiant: str) -> tuple[float, float, float]:
    """(pre-COVID, lockdown, recovery) average quarterly additions.

    Windows: 2019-01..2019-10 / 2020-01..2020-07 / 2020-10..2021-04 (§6.4:
    "a slowdown during the COVID-19 pandemic, but growth continued when the
    economy opened again ... especially in the first months of 2021").
    """
    additions = dict(quarterly_additions(result, hypergiant))

    def window(start: Snapshot, end: Snapshot) -> float:
        values = [v for s, v in additions.items() if start <= s <= end]
        return sum(values) / len(values) if values else 0.0

    return (
        window(Snapshot(2019, 1), Snapshot(2019, 10)),
        window(Snapshot(2020, 1), Snapshot(2020, 7)),
        window(Snapshot(2020, 10), Snapshot(2021, 4)),
    )
