"""Plain-text rendering for benchmark and example output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["render_table", "render_series"]


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    materialised = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        for index, cell in enumerate(row):
            if index < len(widths):
                widths[index] = max(widths[index], len(cell))
            else:
                widths.append(len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for row in materialised:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: dict[str, Sequence[object]],
    labels: Sequence[str],
    title: str = "",
    label_header: str = "snapshot",
) -> str:
    """Render named series against a shared label axis (figures-as-text)."""
    headers = [label_header] + list(series.keys())
    rows = []
    for index, label in enumerate(labels):
        row: list[object] = [label]
        for values in series.values():
            row.append(values[index] if index < len(values) else "")
        rows.append(row)
    return render_table(headers, rows, title=title)
