"""Regional growth — Figure 6 (§6.4).

Each host AS is assigned to one country via the organisation dataset
(Appendix A.2's AS-to-country mapping covers 99.9% of study ASes) and
aggregated per continent.
"""

from __future__ import annotations

from repro.core.footprint_index import FootprintIndex
from repro.topology.generator import GeneratedTopology
from repro.topology.geography import Continent

__all__ = ["regional_growth", "continent_of_as"]


def continent_of_as(topology: GeneratedTopology, asn: int) -> Continent | None:
    """The continent an AS operates in, via its organisation's country."""
    country = topology.organizations.country_of(asn)
    if country is None:
        country = topology.countries.get(asn)
    return None if country is None else country.continent


def regional_growth(
    result: FootprintIndex,
    topology: GeneratedTopology,
    hypergiants: tuple[str, ...],
) -> dict[Continent, dict[str, list[int]]]:
    """Figure 6: per continent, per HG, the host-AS count series."""
    output: dict[Continent, dict[str, list[int]]] = {
        continent: {hg: [] for hg in hypergiants} for continent in Continent
    }
    for snapshot in result.snapshots:
        tallies: dict[tuple[Continent, str], int] = {}
        for hypergiant in hypergiants:
            for asn in result.effective_footprint(hypergiant, snapshot):
                continent = continent_of_as(topology, asn)
                if continent is not None:
                    key = (continent, hypergiant)
                    tallies[key] = tallies.get(key, 0) + 1
        for continent in Continent:
            for hypergiant in hypergiants:
                output[continent][hypergiant].append(tallies.get((continent, hypergiant), 0))
    return output
