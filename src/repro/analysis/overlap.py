"""Multi-hypergiant hosting — Figures 10 and 14 (§6.6, Appendix A.8).

The key observations: almost every AS hosting any HG hosts at least one of
the top-4; and ASes that host one top-4 HG increasingly host more.
"""

from __future__ import annotations

from repro.core.footprint_index import FootprintIndex
from repro.hypergiants.profiles import TOP4
from repro.net.asn import ASN
from repro.timeline import Snapshot

__all__ = [
    "top4_multiplicity",
    "top4_share_of_all_hosts",
    "stable_host_distribution",
    "persistence_distribution",
    "newcomer_fractions",
]


def _top4_count(result: FootprintIndex, asn: ASN, snapshot: Snapshot) -> int:
    return sum(
        1 for hg in TOP4 if asn in result.effective_footprint(hg, snapshot)
    )


def _top4_hosts(result: FootprintIndex, snapshot: Snapshot) -> frozenset[ASN]:
    hosts: set[ASN] = set()
    for hypergiant in TOP4:
        hosts |= result.effective_footprint(hypergiant, snapshot)
    return frozenset(hosts)


def top4_multiplicity(
    result: FootprintIndex, snapshot: Snapshot
) -> dict[int, int]:
    """Figure 10b: among ASes hosting ≥1 top-4 HG at ``snapshot``, how many
    host exactly k of them (k=1..4)."""
    distribution = {1: 0, 2: 0, 3: 0, 4: 0}
    for asn in _top4_hosts(result, snapshot):
        distribution[_top4_count(result, asn, snapshot)] += 1
    return distribution


def top4_share_of_all_hosts(result: FootprintIndex, snapshot: Snapshot) -> float:
    """Figure 10b's percentages: of all ASes hosting *any* HG, the share
    hosting at least one top-4 HG (the paper: >96-97%)."""
    all_hosts: set[ASN] = set()
    for hypergiant in result.hypergiants():
        all_hosts |= result.effective_footprint(hypergiant, snapshot)
    if not all_hosts:
        return 0.0
    top4 = _top4_hosts(result, snapshot)
    return len(top4 & all_hosts) / len(all_hosts) * 100.0


def stable_host_distribution(result: FootprintIndex) -> dict[Snapshot, dict[int, int]]:
    """Figure 10a: restrict to ASes hosting ≥1 top-4 HG in *every* snapshot
    (the paper finds 1,002 such networks) and report their multiplicity
    distribution per snapshot."""
    stable: set[ASN] | None = None
    for snapshot in result.snapshots:
        hosts = set(_top4_hosts(result, snapshot))
        stable = hosts if stable is None else stable & hosts
    stable = stable or set()
    output: dict[Snapshot, dict[int, int]] = {}
    for snapshot in result.snapshots:
        distribution = {1: 0, 2: 0, 3: 0, 4: 0}
        for asn in stable:
            distribution[_top4_count(result, asn, snapshot)] += 1
        output[snapshot] = distribution
    return output


def newcomer_fractions(result: FootprintIndex) -> dict[Snapshot, float]:
    """Appendix A.8: per snapshot, the share of top-4 host ASes never seen
    hosting in any earlier snapshot (the paper: ~5% on average)."""
    seen: set[ASN] = set()
    output: dict[Snapshot, float] = {}
    for snapshot in result.snapshots:
        hosts = _top4_hosts(result, snapshot)
        if hosts:
            newcomers = hosts - seen
            output[snapshot] = len(newcomers) / len(hosts) * 100.0
        else:
            output[snapshot] = 0.0
        seen |= hosts
    return output


def persistence_distribution(
    result: FootprintIndex, min_fraction: float
) -> dict[Snapshot, tuple[dict[int, int], float]]:
    """Figure 14: ASes hosting ≥1 top-4 HG in at least ``min_fraction`` of
    the snapshots.  Per snapshot: the multiplicity distribution of those
    ASes (among the ones hosting then) and their share of all ASes that
    ever hosted ≥1 examined HG."""
    if not 0.0 < min_fraction <= 1.0:
        raise ValueError(f"min_fraction out of range: {min_fraction}")
    appearances: dict[ASN, int] = {}
    ever_any: set[ASN] = set()
    for snapshot in result.snapshots:
        for asn in _top4_hosts(result, snapshot):
            appearances[asn] = appearances.get(asn, 0) + 1
        for hypergiant in result.hypergiants():
            ever_any |= result.effective_footprint(hypergiant, snapshot)
    threshold = min_fraction * len(result.snapshots)
    qualifying = {asn for asn, count in appearances.items() if count >= threshold}
    denominator = len(ever_any) or 1

    output: dict[Snapshot, tuple[dict[int, int], float]] = {}
    for snapshot in result.snapshots:
        distribution = {1: 0, 2: 0, 3: 0, 4: 0}
        present = qualifying & _top4_hosts(result, snapshot)
        for asn in present:
            distribution[_top4_count(result, asn, snapshot)] += 1
        output[snapshot] = (distribution, len(present) / denominator * 100.0)
    return output
