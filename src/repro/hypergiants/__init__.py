"""The hypergiant model: who the 23 hypergiants are, how they manage
certificates and HTTP headers, and how their off-net footprints evolve.

* :mod:`repro.hypergiants.profiles` — per-HG static profile: organisation
  name, domain portfolio, HTTP(S) debug headers (Table 4), certificate
  policy (validity periods, Netflix's expired-certificate era, Cloudflare's
  customer certificates).
* :mod:`repro.hypergiants.schedules` — per-HG off-net AS-count target curves
  anchored on the paper's Table 3 / Figure 3 numbers.
* :mod:`repro.hypergiants.deployment` — the deployment engine that realises
  those curves over the synthetic topology with the paper's demographics
  (cone-size mix, regional growth, multi-HG hosting affinity).
"""

from repro.hypergiants.deployment import DeploymentEngine, DeploymentPlan
from repro.hypergiants.profiles import (
    HEADER_RULES,
    HYPERGIANTS,
    HeaderRule,
    HypergiantProfile,
    TOP4,
    profile,
)
from repro.hypergiants.schedules import DeploymentSchedule, SCHEDULES

__all__ = [
    "HypergiantProfile",
    "HeaderRule",
    "HYPERGIANTS",
    "HEADER_RULES",
    "TOP4",
    "profile",
    "DeploymentSchedule",
    "SCHEDULES",
    "DeploymentEngine",
    "DeploymentPlan",
]
