"""Per-hypergiant off-net deployment schedules.

Each schedule is a piecewise-linear curve of *target off-net host-AS counts*
over the study timeline, anchored on the paper's Table 3 and Figure 3
numbers (at paper scale — the world builder multiplies by its AS-count scale
factor).  Two curves per HG:

* ``deployed`` — ASes with real HG hardware (the paper's header-confirmed
  numbers);
* ``service_present`` — additional ASes where only the HG's *certificate*
  appears (third-party CDN hosting, customer certificates, management
  interfaces; the parenthesised "only certs" numbers in Table 3).

Schedules are pure data + interpolation; realising them against the
topology is :mod:`repro.hypergiants.deployment`'s job.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

from repro.timeline import Snapshot

__all__ = ["DeploymentSchedule", "SCHEDULES", "scaled_target"]


def _s(label: str) -> Snapshot:
    return Snapshot.parse(label)


@dataclass(frozen=True, slots=True)
class DeploymentSchedule:
    """Piecewise-linear target counts at paper scale."""

    hypergiant: str
    #: (snapshot, confirmed host-AS count) anchors, ascending in time.
    deployed_anchors: tuple[tuple[Snapshot, int], ...]
    #: (snapshot, certificate-only *extra* AS count) anchors.
    service_extra_anchors: tuple[tuple[Snapshot, int], ...] = ()

    def __post_init__(self) -> None:
        for anchors in (self.deployed_anchors, self.service_extra_anchors):
            times = [snapshot for snapshot, _ in anchors]
            if times != sorted(times):
                raise ValueError(f"anchors out of order for {self.hypergiant}")

    def deployed_target(self, when: Snapshot) -> int:
        """Interpolated confirmed-deployment AS count at ``when``."""
        return _interpolate(self.deployed_anchors, when)

    def service_extra_target(self, when: Snapshot) -> int:
        """Interpolated certificate-only extra AS count at ``when``."""
        return _interpolate(self.service_extra_anchors, when)


def _interpolate(anchors: tuple[tuple[Snapshot, int], ...], when: Snapshot) -> int:
    if not anchors:
        return 0
    times = [snapshot for snapshot, _ in anchors]
    position = bisect_right(times, when)
    if position == 0:
        return 0 if when < times[0] else anchors[0][1]
    if position == len(anchors):
        return anchors[-1][1]
    (t0, v0), (t1, v1) = anchors[position - 1], anchors[position]
    span = t1.months_since(t0)
    progress = when.months_since(t0) / span if span else 1.0
    return round(v0 + (v1 - v0) * progress)


def scaled_target(count: int, scale: float) -> int:
    """Scale a paper-level AS count to world scale (at least 1 if nonzero)."""
    if count <= 0:
        return 0
    return max(1, round(count * scale))


#: Schedules for every HG with a nonzero footprint in Table 3.  HGs absent
#: here have no off-nets at all (the bottom half of the examined list).
SCHEDULES: dict[str, DeploymentSchedule] = {
    schedule.hypergiant: schedule
    for schedule in (
        DeploymentSchedule(
            "google",
            deployed_anchors=(
                (_s("2013-10"), 1044),
                (_s("2014-10"), 1330),
                (_s("2016-04"), 1750),
                (_s("2017-04"), 2150),
                (_s("2018-04"), 2650),
                (_s("2019-04"), 3050),
                (_s("2020-01"), 3320),
                (_s("2020-07"), 3400),  # COVID slowdown
                (_s("2021-04"), 3810),
            ),
            service_extra_anchors=((_s("2013-10"), 61), (_s("2021-04"), 25)),
        ),
        DeploymentSchedule(
            "facebook",
            deployed_anchors=(
                (_s("2013-10"), 0),
                (_s("2016-04"), 0),  # CDN launches in the summer of 2016
                (_s("2016-07"), 40),
                (_s("2017-04"), 430),
                (_s("2017-10"), 760),
                (_s("2018-04"), 1150),
                (_s("2019-04"), 1500),
                (_s("2019-10"), 1680),
                (_s("2020-01"), 1800),
                (_s("2020-07"), 1860),  # COVID slowdown
                (_s("2021-04"), 2214),
            ),
            service_extra_anchors=((_s("2013-10"), 8), (_s("2021-04"), 15)),
        ),
        DeploymentSchedule(
            "netflix",
            deployed_anchors=(
                (_s("2013-10"), 47),
                (_s("2014-10"), 140),
                (_s("2015-10"), 420),
                (_s("2016-10"), 640),
                (_s("2017-04"), 769),
                (_s("2018-04"), 1120),
                (_s("2019-04"), 1480),
                (_s("2020-01"), 1760),
                (_s("2020-07"), 1830),  # COVID slowdown
                (_s("2021-04"), 2115),
            ),
            service_extra_anchors=((_s("2013-10"), 96), (_s("2021-04"), 173)),
        ),
        DeploymentSchedule(
            "akamai",
            deployed_anchors=(
                (_s("2013-10"), 978),
                (_s("2015-04"), 1160),
                (_s("2016-04"), 1270),
                (_s("2017-04"), 1390),
                (_s("2018-04"), 1463),  # maximum
                (_s("2019-04"), 1340),
                (_s("2020-04"), 1190),
                (_s("2021-04"), 1094),
            ),
            service_extra_anchors=((_s("2013-10"), 35), (_s("2021-04"), 13)),
        ),
        DeploymentSchedule(
            "alibaba",
            deployed_anchors=(
                (_s("2014-10"), 0),
                (_s("2015-04"), 12),
                (_s("2016-04"), 70),
                (_s("2018-01"), 184),  # maximum
                (_s("2019-04"), 158),
                (_s("2021-04"), 136),
            ),
            # Alibaba runs many services on other HGs' servers outside Asia.
            service_extra_anchors=((_s("2014-10"), 0), (_s("2018-01"), 90), (_s("2021-04"), 165)),
        ),
        DeploymentSchedule(
            # Cloudflare's "off-nets" are misidentified customer back-ends
            # (§6.1); the engine materialises them as customer installations.
            "cloudflare",
            deployed_anchors=(
                (_s("2013-10"), 0),
                (_s("2015-04"), 20),
                (_s("2017-04"), 55),
                (_s("2019-04"), 85),
                (_s("2021-01"), 110),  # maximum
                (_s("2021-04"), 110),
            ),
            service_extra_anchors=((_s("2013-10"), 2), (_s("2021-04"), 27)),
        ),
        DeploymentSchedule(
            "amazon",
            deployed_anchors=(
                (_s("2013-10"), 0),
                (_s("2015-04"), 45),
                (_s("2017-07"), 112),  # maximum
                (_s("2019-04"), 85),
                (_s("2021-04"), 62),
            ),
            service_extra_anchors=((_s("2013-10"), 147), (_s("2021-04"), 156)),
        ),
        DeploymentSchedule(
            "cdnetworks",
            deployed_anchors=(
                (_s("2013-10"), 0),
                (_s("2016-04"), 22),
                (_s("2019-01"), 51),  # maximum
                (_s("2020-04"), 26),
                (_s("2021-04"), 11),
            ),
            service_extra_anchors=((_s("2013-10"), 4), (_s("2021-04"), 20)),
        ),
        DeploymentSchedule(
            "limelight",
            deployed_anchors=(
                (_s("2013-10"), 0),
                (_s("2016-04"), 14),
                (_s("2018-04"), 28),
                (_s("2020-04"), 42),  # maximum
                (_s("2021-04"), 32),
            ),
            service_extra_anchors=((_s("2013-10"), 1), (_s("2021-04"), 0)),
        ),
        DeploymentSchedule(
            "apple",
            deployed_anchors=(
                (_s("2013-10"), 0),
                (_s("2018-04"), 2),
                (_s("2020-04"), 6),  # maximum
                (_s("2020-10"), 2),
                (_s("2021-04"), 0),
            ),
            # Apple rides third-party CDNs heavily: big cert-only footprint.
            service_extra_anchors=((_s("2013-10"), 113), (_s("2021-04"), 267)),
        ),
        DeploymentSchedule(
            "twitter",
            deployed_anchors=(
                (_s("2013-10"), 0),
                (_s("2019-04"), 1),
                (_s("2021-04"), 4),  # maximum
            ),
            service_extra_anchors=((_s("2013-10"), 101), (_s("2021-04"), 176)),
        ),
        DeploymentSchedule(
            # Hulu has a handful of genuine off-net caches but only sends
            # debug headers to logged-in users (§7 Missing Headers), so the
            # pipeline can never confirm them and Table 3 shows no footprint.
            "hulu",
            deployed_anchors=((_s("2013-10"), 0), (_s("2017-04"), 12), (_s("2021-04"), 18)),
        ),
        DeploymentSchedule(
            "microsoft",
            deployed_anchors=((_s("2013-10"), 0), (_s("2021-04"), 0)),
            # Azure Stack style on-premise boxes with Microsoft certificates.
            service_extra_anchors=((_s("2013-10"), 9), (_s("2021-04"), 58)),
        ),
    )
}
