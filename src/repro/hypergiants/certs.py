"""Certificate issuance for every server kind — the CertificateBook.

Certificates are issued lazily and cached per era, so thousands of servers
share a handful of chains exactly the way Figure 11 shows real hypergiant
IP groups sharing certificates.  The book covers:

* **hypergiant era certificates** — one chain per (HG, domain group, era);
  era length follows the HG's validity policy (Appendix A.3: Google ~3
  months, Microsoft 1-2 years, Netflix's 2019 shift to ~1 month);
* **Netflix's expired-certificate episode** (§6.2): between 2017-04 and
  2019-10 most Netflix off-nets present a certificate frozen at its
  pre-2017 window, i.e. expired at scan time;
* **Cloudflare customer certificates** (§3, §7): Universal SSL bundles
  ~20 customer domains plus a ``sniNNN.cloudflaressl.com`` marker SAN;
  paid dedicated certificates omit the marker (and therefore survive the
  paper's Cloudflare filter);
* **forged DV certificates** with a hypergiant Organization but foreign
  domains (caught by the §4.3 all-dNSNames rule);
* **shared certificates** mixing HG and partner domains (likewise caught);
* **background certificates** for ordinary sites, with optional invalid
  modes (expired / self-signed / untrusted issuer) so that, as in the real
  corpuses, more than a third of hosts fail §4.1 validation.
"""

from __future__ import annotations

import random

from repro.hypergiants.profiles import HypergiantProfile, profile
from repro.timeline import NETFLIX_EXPIRED_ERA, Snapshot
from repro.x509.authority import CertificateAuthority, make_self_signed
from repro.x509.certificate import SubjectName
from repro.x509.chain import CertificateChain, build_chain

__all__ = ["CertificateBook", "CLOUDFLARE_SNI_SUFFIX"]

#: Marker SAN on Cloudflare Universal SSL certificates (§7).
CLOUDFLARE_SNI_SUFFIX = ".cloudflaressl.com"

#: The epoch from which certificate eras are counted.
_ERA_EPOCH = Snapshot(2012, 1)

#: Customers per Cloudflare Universal SSL bundle certificate.
_CF_BUNDLE_SIZE = 20


class CertificateBook:
    """Lazily issues and caches every chain the world serves."""

    def __init__(
        self,
        issuers: dict[str, CertificateAuthority],
        seed: int = 0,
    ) -> None:
        if not issuers:
            raise ValueError("need at least one issuing authority")
        self._issuer_names = sorted(issuers)
        self._issuers = issuers
        self._seed = seed
        self._chain_cache: dict[tuple, CertificateChain] = {}
        self._rogue_authority = CertificateAuthority.create_root(
            "Rogue Self-Managed CA",
            Snapshot(2000, 1),
            Snapshot(2040, 1),
        )

    # -- issuer selection ----------------------------------------------------

    def _issuer_for(self, label: str) -> CertificateAuthority:
        """A stable issuing intermediate per label."""
        rng = random.Random(f"{self._seed}:issuer:{label}")
        return self._issuers[rng.choice(self._issuer_names)]

    # -- hypergiant certificates ----------------------------------------------

    def _era_window(self, hg: HypergiantProfile, when: Snapshot) -> tuple[Snapshot, Snapshot]:
        months = max(1, hg.validity_months(when))
        delta = when.months_since(_ERA_EPOCH)
        era_start = _ERA_EPOCH.plus_months((delta // months) * months)
        return era_start, era_start.plus_months(months)

    def hypergiant_chain(
        self,
        hg_key: str,
        group: int,
        when: Snapshot,
        offnet: bool = False,
        shard: int = 0,
        generation: int = 0,
    ) -> CertificateChain:
        """The chain a HG server of domain-group ``group`` presents at
        ``when``.

        Off-net Netflix servers inside the expired era return the frozen
        pre-era certificate (§6.2) instead of a fresh one.  ``shard``
        selects among operationally distinct certificates covering the same
        domain group — HG fleets split their population over several
        certificates (Figure 11's IP groups), and Facebook's sharding grew
        over time.  ``generation`` counts scenario-event mass rotations: a
        non-zero generation reissues the chain (same names, same validity
        era, fresh serial and fingerprint) without disturbing the
        generation-0 issuance stream the default world depends on.
        """
        hg = profile(hg_key)
        group = group % len(hg.domain_groups)
        if (
            offnet
            and hg_key == "netflix"
            and group == 0
            and NETFLIX_EXPIRED_ERA[0] <= when < NETFLIX_EXPIRED_ERA[1]
        ):
            return self._netflix_frozen_chain()
        return self._issue_group_chain(hg, group, when, shard, generation)

    def _netflix_frozen_chain(self) -> CertificateChain:
        """The certificate Netflix off-nets kept serving after it expired:
        valid for the year *before* the era, hence expired throughout it."""
        key = ("netflix-frozen",)
        chain = self._chain_cache.get(key)
        if chain is None:
            netflix = profile("netflix")
            issuer = self._issuer_for("hg:netflix:0")
            era_start = NETFLIX_EXPIRED_ERA[0]
            leaf = issuer.issue(
                subject=SubjectName(
                    common_name=netflix.domain_groups[0][0],
                    organization=netflix.organization,
                ),
                dns_names=netflix.domain_groups[0],
                not_before=era_start.plus_months(-13),
                not_after=era_start.plus_months(-1),
                provenance="hg:netflix:frozen-expired",
            )
            chain = build_chain(leaf, issuer)
            self._chain_cache[key] = chain
        return chain

    def _issue_group_chain(
        self,
        hg: HypergiantProfile,
        group: int,
        when: Snapshot,
        shard: int = 0,
        generation: int = 0,
    ) -> CertificateChain:
        not_before, not_after = self._era_window(hg, when)
        key = ("hg", hg.key, group, shard, generation, not_before.label, not_after.label)
        chain = self._chain_cache.get(key)
        if chain is None:
            issuer = self._issuer_for(f"hg:{hg.key}:{group}")
            names = hg.domain_groups[group]
            provenance = f"hg:{hg.key}:group{group}:shard{shard}"
            if generation:
                provenance += f":gen{generation}"
            leaf = issuer.issue(
                subject=SubjectName(common_name=names[0], organization=hg.organization),
                dns_names=names,
                not_before=not_before,
                not_after=not_after,
                provenance=provenance,
            )
            chain = build_chain(leaf, issuer)
            self._chain_cache[key] = chain
        return chain

    # -- §8 hide-and-seek variants ----------------------------------------------

    def stripped_organization_chain(self, hg_key: str, when: Snapshot) -> CertificateChain:
        """§8 strategy (3): the off-net certificate without an Organization
        entry — the keyword search has nothing to match."""
        hg = profile(hg_key)
        not_before, not_after = self._era_window(hg, when)
        key = ("hg-stripped", hg_key, not_before.label)
        chain = self._chain_cache.get(key)
        if chain is None:
            issuer = self._issuer_for(f"hg:{hg_key}:0")
            names = hg.domain_groups[0]
            leaf = issuer.issue(
                subject=SubjectName(common_name=names[0], organization=""),
                dns_names=names,
                not_before=not_before,
                not_after=not_after,
                provenance=f"hg:{hg_key}:stripped-org",
            )
            chain = build_chain(leaf, issuer)
            self._chain_cache[key] = chain
        return chain

    def unique_domain_chain(
        self, hg_key: str, asn: int, when: Snapshot
    ) -> CertificateChain:
        """§8 strategy (3b): a per-deployment hostname that never appears
        on-net, so the §4.3 subset rule rejects the candidate."""
        hg = profile(hg_key)
        not_before, not_after = self._era_window(hg, when)
        key = ("hg-unique", hg_key, asn, not_before.label)
        chain = self._chain_cache.get(key)
        if chain is None:
            issuer = self._issuer_for(f"hg:{hg_key}:0")
            domain = f"cache-as{asn}.{hg_key}-edge.example"
            leaf = issuer.issue(
                subject=SubjectName(common_name=domain, organization=hg.organization),
                dns_names=(domain,),
                not_before=not_before,
                not_after=not_after,
                provenance=f"hg:{hg_key}:unique:{asn}",
            )
            chain = build_chain(leaf, issuer)
            self._chain_cache[key] = chain
        return chain

    # -- Cloudflare customers --------------------------------------------------

    def cloudflare_customer_domain(self, customer_id: int) -> str:
        """The synthetic domain of Cloudflare customer ``customer_id``."""
        return f"customer{customer_id}.example.org"

    def cloudflare_bundle_chain(self, bundle: int, when: Snapshot) -> CertificateChain:
        """A Universal SSL bundle: ~20 customer domains + the marker SAN.

        Served both by Cloudflare's on-net edges and by free-tier customer
        back-ends — which is exactly what misleads the candidate rule.
        """
        cloudflare = profile("cloudflare")
        not_before, not_after = self._era_window(cloudflare, when)
        key = ("cf-bundle", bundle, not_before.label)
        chain = self._chain_cache.get(key)
        if chain is None:
            issuer = self._issuer_for(f"cf-bundle:{bundle}")
            customers = tuple(
                self.cloudflare_customer_domain(bundle * _CF_BUNDLE_SIZE + i)
                for i in range(_CF_BUNDLE_SIZE)
            )
            names = (f"sni{100000 + bundle}{CLOUDFLARE_SNI_SUFFIX}",) + customers
            leaf = issuer.issue(
                subject=SubjectName(
                    common_name=names[0], organization=cloudflare.organization
                ),
                dns_names=names,
                not_before=not_before,
                not_after=not_after,
                provenance=f"cf-bundle:{bundle}",
            )
            chain = build_chain(leaf, issuer)
            self._chain_cache[key] = chain
        return chain

    def cloudflare_dedicated_chain(self, customer_id: int, when: Snapshot) -> CertificateChain:
        """A paid dedicated certificate: customer domains only, **no**
        ``cloudflaressl.com`` marker — it survives the §7 filter."""
        cloudflare = profile("cloudflare")
        not_before, not_after = self._era_window(cloudflare, when)
        key = ("cf-dedicated", customer_id, not_before.label)
        chain = self._chain_cache.get(key)
        if chain is None:
            issuer = self._issuer_for(f"cf-dedicated:{customer_id}")
            domain = self.cloudflare_customer_domain(customer_id)
            leaf = issuer.issue(
                subject=SubjectName(common_name=domain, organization=cloudflare.organization),
                dns_names=(domain, f"www.{domain}"),
                not_before=not_before,
                not_after=not_after,
                provenance=f"cf-dedicated:{customer_id}",
            )
            chain = build_chain(leaf, issuer)
            self._chain_cache[key] = chain
        return chain

    def cloudflare_onnet_customer_names(self, bundles: int) -> tuple[str, ...]:
        """All customer-facing names Cloudflare's edges serve (bundles 0..n).

        Used by the world builder to make on-net edges present every bundle,
        so the §4.3 subset rule sees customer domains as "served on-net".
        Dedicated-customer ``www.`` aliases are included too.
        """
        names: list[str] = []
        for bundle in range(bundles):
            for i in range(_CF_BUNDLE_SIZE):
                domain = self.cloudflare_customer_domain(bundle * _CF_BUNDLE_SIZE + i)
                names.append(domain)
                names.append(f"www.{domain}")
        return tuple(names)

    def cloudflare_www_bundle_chain(self, bundle: int, when: Snapshot) -> CertificateChain:
        """The companion on-net bundle covering ``www.`` aliases, so
        dedicated certificates' SANs are all present on-net."""
        cloudflare = profile("cloudflare")
        not_before, not_after = self._era_window(cloudflare, when)
        key = ("cf-www-bundle", bundle, not_before.label)
        chain = self._chain_cache.get(key)
        if chain is None:
            issuer = self._issuer_for(f"cf-www-bundle:{bundle}")
            aliases = tuple(
                f"www.{self.cloudflare_customer_domain(bundle * _CF_BUNDLE_SIZE + i)}"
                for i in range(_CF_BUNDLE_SIZE)
            )
            names = (f"sni{200000 + bundle}{CLOUDFLARE_SNI_SUFFIX}",) + aliases
            leaf = issuer.issue(
                subject=SubjectName(
                    common_name=names[0], organization=cloudflare.organization
                ),
                dns_names=names,
                not_before=not_before,
                not_after=not_after,
                provenance=f"cf-www-bundle:{bundle}",
            )
            chain = build_chain(leaf, issuer)
            self._chain_cache[key] = chain
        return chain

    # -- adversarial / odd certificates ---------------------------------------

    def fake_dv_chain(self, hg_key: str, attacker_id: int, when: Snapshot) -> CertificateChain:
        """A WebPKI-valid DV certificate whose unvalidated Organization
        imitates ``hg_key`` but whose domains are the attacker's own."""
        hg = profile(hg_key)
        year_start = Snapshot(when.year, 1)
        key = ("fake-dv", hg_key, attacker_id, year_start.label)
        chain = self._chain_cache.get(key)
        if chain is None:
            issuer = self._issuer_for(f"fake-dv:{attacker_id}")
            domain = f"totally-not-{hg.key}-{attacker_id}.example.net"
            leaf = issuer.issue(
                subject=SubjectName(common_name=domain, organization=hg.organization),
                dns_names=(domain,),
                not_before=year_start,
                not_after=year_start.plus_months(14),
                provenance=f"fake-dv:{hg.key}:{attacker_id}",
            )
            chain = build_chain(leaf, issuer)
            self._chain_cache[key] = chain
        return chain

    def shared_chain(self, hg_key: str, partner_id: int, when: Snapshot) -> CertificateChain:
        """A certificate a HG shares with a partner organisation: HG domains
        plus partner domains that never appear on-net (§4.3 filters it)."""
        hg = profile(hg_key)
        year_start = Snapshot(when.year, 1)
        key = ("shared", hg_key, partner_id, year_start.label)
        chain = self._chain_cache.get(key)
        if chain is None:
            issuer = self._issuer_for(f"shared:{hg_key}:{partner_id}")
            names = hg.offnet_domains + (f"partner{partner_id}.example.com",)
            leaf = issuer.issue(
                subject=SubjectName(common_name=names[0], organization=hg.organization),
                dns_names=names,
                not_before=year_start,
                not_after=year_start.plus_months(14),
                provenance=f"shared:{hg_key}:{partner_id}",
            )
            chain = build_chain(leaf, issuer)
            self._chain_cache[key] = chain
        return chain

    # -- background sites -------------------------------------------------------

    def background_chain(
        self,
        site_id: int,
        organization: str,
        when: Snapshot,
        invalid_mode: str = "",
    ) -> CertificateChain:
        """An ordinary site's chain; ``invalid_mode`` selects §4.1 rejects:
        ``"expired"``, ``"self-signed"``, or ``"untrusted"``."""
        year_start = Snapshot(when.year, 1)
        key = ("bg", site_id, invalid_mode, year_start.label)
        chain = self._chain_cache.get(key)
        if chain is not None:
            return chain
        domain = f"site{site_id}.example.com"
        subject = SubjectName(common_name=domain, organization=organization)
        names = (domain, f"www.{domain}")
        if invalid_mode == "self-signed":
            leaf = make_self_signed(
                subject, names, year_start, year_start.plus_months(120),
                provenance=f"bg-selfsigned:{site_id}",
            )
            chain = CertificateChain((leaf,))
        elif invalid_mode == "expired":
            issuer = self._issuer_for(f"bg:{site_id}")
            leaf = issuer.issue(
                subject=subject,
                dns_names=names,
                not_before=year_start.plus_months(-36),
                not_after=year_start.plus_months(-12),
                provenance=f"bg-expired:{site_id}",
            )
            chain = build_chain(leaf, issuer)
        elif invalid_mode == "untrusted":
            leaf = self._rogue_authority.issue(
                subject=subject,
                dns_names=names,
                not_before=year_start,
                not_after=year_start.plus_months(24),
                provenance=f"bg-untrusted:{site_id}",
            )
            chain = build_chain(leaf, self._rogue_authority, include_root=True)
        elif invalid_mode == "":
            issuer = self._issuer_for(f"bg:{site_id}")
            leaf = issuer.issue(
                subject=subject,
                dns_names=names,
                not_before=year_start,
                not_after=year_start.plus_months(15),
                provenance=f"bg:{site_id}",
            )
            chain = build_chain(leaf, issuer)
        else:
            raise ValueError(f"unknown invalid_mode {invalid_mode!r}")
        self._chain_cache[key] = chain
        return chain
