"""HTTP(S) response-header generation — the HeaderBook.

Produces the response headers every server kind returns, mirroring the
behaviours §4.4 and Table 4 (Appendix A.5) document:

* hypergiant servers emit their debugging headers (constant values like
  ``Server: AkamaiGHost``, per-request values like ``X-FB-Debug``);
* a large fraction of Netflix boxes answer with a bare default-nginx
  header, and Netflix/Hulu suppress debug headers for logged-out scans;
* third-party CDN edges serving another HG's content return the *edge*
  CDN's headers, with a small fraction also leaking origin headers — the
  §7 reverse-proxy conflict;
* background servers return ordinary software banners plus standard
  headers, so the §4.4 frequency analysis has realistic noise to reject.
"""

from __future__ import annotations

import zlib

from repro.hypergiants.profiles import HeaderRule, profile
from repro.scan.server import ServerKind, SimulatedServer
from repro.timeline import Snapshot

__all__ = ["HeaderBook"]

Headers = tuple[tuple[str, str], ...]

#: Ubiquitous standard headers every response carries a sample of.
_STANDARD_POOL: tuple[tuple[str, str], ...] = (
    ("Content-Type", "text/html; charset=utf-8"),
    ("Cache-Control", "max-age=3600"),
    ("Date", "(request time)"),
    ("Content-Length", "5120"),
    ("Connection", "keep-alive"),
    ("Vary", "Accept-Encoding"),
    ("Accept-Ranges", "bytes"),
)

_BACKGROUND_SERVERS = ("nginx", "Apache", "Microsoft-IIS/8.5", "lighttpd", "openresty")

#: The fraction of third-party edges leaking origin headers (§7: 4%).
_CONFLICT_FRACTION = 0.04


def _token(ip: int, snapshot: Snapshot, extra: str = "") -> str:
    """A deterministic request-id-looking value."""
    raw = f"{ip}:{snapshot.label}:{extra}".encode()
    return format(zlib.crc32(raw), "08x")


class HeaderBook:
    """Resolves the headers a server returns at a snapshot."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    # -- public -----------------------------------------------------------

    def headers_for(
        self, server: SimulatedServer, snapshot: Snapshot, port: int
    ) -> Headers | None:
        """The response headers, or ``None`` when no HTTP service answers."""
        kind = server.kind
        if kind is ServerKind.HG_ONNET or kind is ServerKind.HG_OFFNET:
            return self._hypergiant_headers(server, snapshot)
        if kind is ServerKind.HG_SERVICE:
            return self._service_headers(server, snapshot)
        if kind is ServerKind.CF_CUSTOMER:
            return self._cloudflare_customer_headers(server, snapshot)
        if kind is ServerKind.MGMT_INTERFACE:
            return self._standard(server) + (("Server", "Apache"),)
        # Background and fake-DV servers are ordinary web boxes.
        return self._background_headers(server)

    # -- per-kind generation -------------------------------------------------

    def _standard(self, server: SimulatedServer) -> Headers:
        count = 3 + int(server.salt * 4)  # 3..6 standard headers
        return _STANDARD_POOL[:count]

    def anonymous_headers(self, server: SimulatedServer) -> Headers:
        """§8 strategy (4): nothing but standard headers — the confirmation
        step has no fingerprint to match (at the cost of harder debugging)."""
        return self._standard(server)

    def spoofed_headers(self, server: SimulatedServer) -> Headers:
        """Adversarial banner spoofing: the response impersonates an
        unrelated stock product, so a header matcher sees a plausible but
        wrong fleet — worse than anonymising, it actively misleads."""
        banner = _BACKGROUND_SERVERS[int(server.salt * len(_BACKGROUND_SERVERS))]
        return (("Server", banner),) + self._standard(server)

    def middlebox_headers(
        self, server: SimulatedServer, snapshot: Snapshot
    ) -> Headers:
        """An in-path middlebox rewrites the ``Server`` banner to its own
        and strips the operator's debug headers — the response looks like
        a bare nginx box regardless of what the origin actually sent."""
        return (("Server", "nginx"),) + self._standard(server)

    def _fingerprint_headers(
        self, hg_key: str, server: SimulatedServer, snapshot: Snapshot
    ) -> Headers:
        """Concrete header values satisfying 1-3 of the HG's Table 4 rules.

        Real servers emit a subset of their operator's debug headers (and at
        most one ``Server`` banner); the subset rotates deterministically
        with the server's salt so every rule stays frequent fleet-wide.
        """
        rules = profile(hg_key).header_rules
        if not rules:
            return ()
        start = int(server.salt * len(rules)) % len(rules)
        ordered = rules[start:] + rules[:start]
        emitted: list[tuple[str, str]] = []
        server_banner_used = False
        for rule in ordered:
            is_server_banner = rule.name.lower() == "server"
            if is_server_banner and server_banner_used:
                continue
            emitted.append(self._realise(rule, server, snapshot))
            if is_server_banner:
                server_banner_used = True
            if len(emitted) >= 3:
                break
        return tuple(emitted)

    def _realise(
        self, rule: HeaderRule, server: SimulatedServer, snapshot: Snapshot
    ) -> tuple[str, str]:
        name = rule.name
        if name.endswith("*"):
            # Header-name prefix rules (X-Netflix.*) get a concrete suffix.
            name = name[:-1] + "proxy-id"
        if rule.value is None:
            return name, _token(server.ip, snapshot, name)
        if rule.value.endswith("*"):
            return name, rule.value[:-1] + _token(server.ip, snapshot, name)[:4]
        return name, rule.value

    def _hypergiant_headers(
        self, server: SimulatedServer, snapshot: Snapshot
    ) -> Headers:
        if server.nginx_default:
            # The Netflix quirk: nothing but a default nginx banner.
            return (("Server", "nginx"),) + self._standard(server)
        if server.headerless:
            return self._standard(server)
        return self._fingerprint_headers(server.hypergiant, server, snapshot) + self._standard(
            server
        )

    def _service_headers(self, server: SimulatedServer, snapshot: Snapshot) -> Headers:
        """Third-party edge: the *edge* CDN's headers; sometimes both."""
        edge = server.edge_hypergiant or "akamai"
        headers = self._fingerprint_headers(edge, server, snapshot)
        if server.salt < _CONFLICT_FRACTION and server.hypergiant:
            # Reverse-proxy / cache-miss conflict: origin debug headers leak
            # through — but the edge's Server banner stays authoritative (a
            # proxy never forwards the origin's Server header).
            leaked = tuple(
                (name, value)
                for name, value in self._fingerprint_headers(
                    server.hypergiant, server, snapshot
                )
                if name.lower() != "server"
            )
            headers = headers + leaked
        return headers + self._standard(server)

    def _cloudflare_customer_headers(
        self, server: SimulatedServer, snapshot: Snapshot
    ) -> Headers:
        """Customer back-ends fronted by Cloudflare return CF headers (the
        proxy stamps responses), which is what §6.1 says confuses the
        confirmation step until the manual filter removes these hosts."""
        return self._fingerprint_headers("cloudflare", server, snapshot) + self._standard(server)

    def _background_headers(self, server: SimulatedServer) -> Headers:
        banner = _BACKGROUND_SERVERS[int(server.salt * len(_BACKGROUND_SERVERS))]
        headers: list[tuple[str, str]] = [("Server", banner)]
        if server.salt > 0.7:
            headers.append(("X-Powered-By", "PHP/7.4"))
        if server.salt > 0.9:
            headers.append(("X-Request-Id", _token(server.ip, Snapshot(2000, 1))))
        return tuple(headers) + self._standard(server)
