"""The deployment engine: realising Table 3's curves on the topology.

For every snapshot the engine decides, per hypergiant, which ASes host

* **deployed off-nets** — real HG hardware (header-confirmable), and
* **service-present ASes** — the HG's certificate without its hardware
  (third-party CDN edges, customer back-ends, management interfaces).

Host selection reproduces the paper's observed demographics:

* category mix (§6.3): most hosts are stub/small/medium eyeballs, but large
  ASes are strongly over-represented relative to their population share;
  Akamai skews larger than the other top-4;
* regional growth (§6.4): per-HG continent weights, with a ramp that makes
  South American growth exponential for Google/Netflix/Facebook and keeps
  Alibaba centred on Asia;
* hosting affinity (§6.6): an AS already hosting top-4 HGs is more likely
  to take another, producing the multi-HG overlap of Figure 10;
* Akamai's shrinkage (Fig. 3/5d): when targets fall, stub hosts in North
  America are released first, shifting the mix toward medium/large ASes in
  Asia (Appendix A.7).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.hypergiants.profiles import TOP4
from repro.hypergiants.schedules import SCHEDULES, scaled_target
from repro.net.asn import ASN
from repro.timeline import Snapshot
from repro.topology.categories import ConeCategory
from repro.topology.generator import GeneratedTopology
from repro.topology.geography import Continent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (world -> here)
    from repro.world.events import ScenarioEvent

__all__ = ["DeploymentEngine", "DeploymentPlan"]

def _category_weights(stub: float, small: float, medium: float, large: float, xlarge: float):
    return {
        ConeCategory.STUB: stub,
        ConeCategory.SMALL: small,
        ConeCategory.MEDIUM: medium,
        ConeCategory.LARGE: large,
        ConeCategory.XLARGE: xlarge,
    }


#: Per-HG selection weight by host category.  Each weight is the desired
#: host-mix share divided by the Internet census share, so that weighted
#: sampling reproduces the §6.3 host mixes (~29% stub / ~42% small / ~23%
#: medium / ~5% large+xlarge for G/N/F; Akamai skews larger: 13% stub, >16%
#: large+xlarge).
_CATEGORY_PREFERENCES: dict[str, dict[ConeCategory, float]] = {
    "default": _category_weights(0.48, 3.2, 8.8, 14.0, 12.0),
    "akamai": _category_weights(0.6, 3.4, 10.0, 40.0, 25.0),
    "alibaba": _category_weights(0.2, 3.0, 10.0, 20.0, 15.0),
}

#: Per-HG continent attractiveness (1.0 = neutral).
_REGION_PREFERENCES: dict[str, dict[Continent, float]] = {
    "google": {
        Continent.ASIA: 1.1,
        Continent.EUROPE: 1.0,
        Continent.SOUTH_AMERICA: 1.0,
        Continent.NORTH_AMERICA: 0.8,
        Continent.AFRICA: 1.2,
        Continent.OCEANIA: 0.8,
    },
    "facebook": {
        Continent.ASIA: 1.2,
        Continent.EUROPE: 0.9,
        Continent.SOUTH_AMERICA: 1.1,
        Continent.NORTH_AMERICA: 0.6,
        Continent.AFRICA: 1.3,
        Continent.OCEANIA: 0.7,
    },
    "netflix": {
        Continent.ASIA: 0.9,
        Continent.EUROPE: 1.1,
        Continent.SOUTH_AMERICA: 1.1,
        Continent.NORTH_AMERICA: 0.9,
        Continent.AFRICA: 0.7,
        Continent.OCEANIA: 0.9,
    },
    "akamai": {
        Continent.ASIA: 1.5,
        Continent.EUROPE: 1.1,
        Continent.SOUTH_AMERICA: 0.7,
        Continent.NORTH_AMERICA: 1.0,
        Continent.AFRICA: 0.6,
        Continent.OCEANIA: 0.8,
    },
    "alibaba": {
        Continent.ASIA: 12.0,
        Continent.EUROPE: 0.3,
        Continent.SOUTH_AMERICA: 0.1,
        Continent.NORTH_AMERICA: 0.3,
        Continent.AFRICA: 0.1,
        Continent.OCEANIA: 0.1,
    },
}

#: How strongly hosting other top-4 HGs attracts another (Fig. 10) at the
#: end of the study.  The boost ramps up over time: in 2013 footprints were
#: largely disjoint (<30% of hosts had ≥2 top-4 HGs), by 2020 most hosts
#: take 2-4 — the §6.6 symbiosis built up gradually.
_AFFINITY_BOOST_END = 22.0
_AFFINITY_BOOST_START = 0.4

#: South America's attractiveness ramps up over the study for the big three,
#: producing the exponential regional growth of Fig. 6c.
_SA_RAMP_HGS = frozenset({"google", "facebook", "netflix"})


@dataclass(slots=True)
class DeploymentPlan:
    """Ground-truth deployments per hypergiant per snapshot."""

    snapshots: tuple[Snapshot, ...]
    deployed: dict[str, dict[Snapshot, frozenset[ASN]]] = field(default_factory=dict)
    service_present: dict[str, dict[Snapshot, frozenset[ASN]]] = field(default_factory=dict)
    #: Scenario-event bookkeeping: ASes a cache-withdrawal event has taken
    #: dark at a snapshot (disjoint from ``deployed`` there; the same ASes
    #: return when the event window closes).  Empty for event-free worlds.
    withdrawn: dict[str, dict[Snapshot, frozenset[ASN]]] = field(default_factory=dict)

    def deployed_at(self, hypergiant: str, snapshot: Snapshot) -> frozenset[ASN]:
        """ASes hosting the HG's hardware at ``snapshot``."""
        return self.deployed.get(hypergiant, {}).get(snapshot, frozenset())

    def withdrawn_at(self, hypergiant: str, snapshot: Snapshot) -> frozenset[ASN]:
        """ASes a scenario event has withdrawn from the HG at ``snapshot``."""
        return self.withdrawn.get(hypergiant, {}).get(snapshot, frozenset())

    def service_present_at(self, hypergiant: str, snapshot: Snapshot) -> frozenset[ASN]:
        """Cert-only ASes for the HG at ``snapshot`` (disjoint from deployed)."""
        return self.service_present.get(hypergiant, {}).get(snapshot, frozenset())

    def hypergiants(self) -> tuple[str, ...]:
        """All HGs with any footprint in the plan."""
        return tuple(sorted(set(self.deployed) | set(self.service_present)))

    def hosts_of_any(self, snapshot: Snapshot, hypergiants: tuple[str, ...]) -> frozenset[ASN]:
        """ASes hosting hardware of at least one of ``hypergiants``."""
        hosts: set[ASN] = set()
        for hypergiant in hypergiants:
            hosts |= self.deployed_at(hypergiant, snapshot)
        return frozenset(hosts)

    def top4_host_count(self, asn: ASN, snapshot: Snapshot) -> int:
        """How many of the top-4 HGs the AS hosts at ``snapshot``."""
        return sum(1 for hg in TOP4 if asn in self.deployed_at(hg, snapshot))


class DeploymentEngine:
    """Greedy snapshot-by-snapshot realisation of the schedules."""

    def __init__(
        self,
        topology: GeneratedTopology,
        scale: float,
        seed: int,
        excluded_ases: frozenset[ASN] = frozenset(),
        events: tuple[ScenarioEvent, ...] = (),
        roster: tuple[str, ...] = (),
    ) -> None:
        if scale <= 0:
            raise ValueError("scale must be positive")
        self._topology = topology
        self._scale = scale
        self._seed = seed
        self._excluded = excluded_ases
        # Scenario-engine inputs: mid-timeline events modulate targets and
        # withdraw hosts; a non-empty roster restricts which schedules run.
        # Both default to "off", leaving the plan bit-identical to the
        # pre-scenario engine.
        self._events = tuple(events)
        self._schedules = (
            {hg: SCHEDULES[hg] for hg in SCHEDULES if hg in roster}
            if roster
            else dict(SCHEDULES)
        )
        self._rng = random.Random(seed)
        # HGs deploy where the users are: an AS's user-population market
        # share multiplies its attractiveness, which is what makes a few
        # hundred host ASes cover most of a country's users (§6.5).
        self._market_share: dict[ASN, float] = {
            entry.asn: entry.market_share for entry in topology.population.entries
        }
        # Deterministic per-(HG, AS) jitter so selections are stable.
        self._jitter_cache: dict[tuple[str, ASN], float] = {}

    # -- public API ----------------------------------------------------------

    def run(self) -> DeploymentPlan:
        """Produce the full deployment plan over the topology's timeline."""
        topology = self._topology
        plan = DeploymentPlan(snapshots=topology.snapshots)
        current: dict[str, set[ASN]] = {hg: set() for hg in self._schedules}
        service_order: dict[str, list[ASN]] = {}

        # Larger HGs pick first within each snapshot so smaller footprints
        # can follow them into the same ASes (the §6.6 symbiosis).
        ordered_hgs = sorted(
            self._schedules,
            key=lambda hg: max(v for _, v in self._schedules[hg].deployed_anchors),
            reverse=True,
        )

        for snapshot in topology.snapshots:
            # HG-owned ASes can never be off-net hosts (off = outside the HG).
            alive = topology.alive(snapshot) - self._excluded
            categories = {asn: topology.category_at(asn, snapshot) for asn in alive}
            overlap = self._overlap_counts(current)

            for hypergiant in ordered_hgs:
                schedule = self._schedules[hypergiant]
                target = scaled_target(schedule.deployed_target(snapshot), self._scale)
                target = self._event_target(hypergiant, snapshot, target)
                hosts = current[hypergiant]
                hosts &= alive  # an AS cannot host before it exists
                if target > len(hosts):
                    before = set(hosts)
                    self._grow(hypergiant, hosts, target, snapshot, alive, categories, overlap)
                    if hypergiant in TOP4:
                        for asn in hosts - before:
                            overlap[asn] = overlap.get(asn, 0) + 1
                elif target < len(hosts):
                    # Akamai does not merely shed hosts: it churns, dropping
                    # North American stubs while *adding* medium/large ASes
                    # in Asia (Appendix A.7) — shrink past the target, then
                    # re-grow the difference through the normal (Asia-heavy,
                    # large-skewed) preference.
                    churn = (
                        max(1, round(len(hosts) * 0.04))
                        if hypergiant == "akamai"
                        else 0
                    )
                    self._shrink(hypergiant, hosts, max(0, target - churn), categories)
                    if churn:
                        self._grow(
                            hypergiant, hosts, target, snapshot, alive, categories, overlap
                        )
                # A cache-withdrawal event takes a jitter-keyed subset dark:
                # ``hosts`` keeps them (so restoration returns the *same*
                # ASes and the grow path does not backfill), but the plan's
                # ground truth excludes them while the window is open.
                withdrawn = self._withdrawn(hypergiant, hosts, snapshot)
                if withdrawn:
                    plan.withdrawn.setdefault(hypergiant, {})[snapshot] = withdrawn
                plan.deployed.setdefault(hypergiant, {})[snapshot] = (
                    frozenset(hosts) - withdrawn
                )

            # Cert-only ASes: drawn from a per-HG deterministic ordering,
            # preferring ASes that host *other* HGs' hardware (third-party
            # CDN edges) and never overlapping the HG's own deployment.
            for hypergiant, schedule in self._schedules.items():
                extra_target = scaled_target(
                    schedule.service_extra_target(snapshot), self._scale
                )
                order = service_order.get(hypergiant)
                if order is None:
                    order = self._service_order(hypergiant)
                    service_order[hypergiant] = order
                own = current[hypergiant]
                chosen: list[ASN] = []
                for asn in order:
                    if len(chosen) >= extra_target:
                        break
                    if asn in alive and asn not in own:
                        chosen.append(asn)
                plan.service_present.setdefault(hypergiant, {})[snapshot] = frozenset(chosen)

        return plan

    # -- internals ------------------------------------------------------------

    def _event_target(self, hypergiant: str, snapshot: Snapshot, target: int) -> int:
        """Apply active flash-crowd events to the schedule's target.

        The multiplier compounds on the *scaled* target so toy worlds see
        the same relative spike as large ones; when the window closes the
        ordinary shrink path releases the surplus.
        """
        for event in self._events:
            if (
                event.kind == "flash-crowd"
                and event.hypergiant == hypergiant
                and event.active_at(snapshot)
            ):
                target = max(target + 1, round(target * event.magnitude))
        return target

    def _withdrawn(
        self, hypergiant: str, hosts: set[ASN], snapshot: Snapshot
    ) -> frozenset[ASN]:
        """The jitter-keyed host subset active cache-withdrawals take dark.

        Keying the subset on the engine's fixed per-(HG, AS) jitter — not
        on a stream that advances — means every snapshot inside the window
        withdraws the *same* ASes and the window's close restores exactly
        them, mirroring the §6.2 Netflix restoration shape.
        """
        fraction = 0.0
        for event in self._events:
            if (
                event.kind == "cache-withdrawal"
                and event.hypergiant == hypergiant
                and event.active_at(snapshot)
            ):
                fraction = max(fraction, event.magnitude)
        if fraction <= 0.0 or not hosts:
            return frozenset()
        count = min(len(hosts), max(1, round(len(hosts) * fraction)))
        ordered = sorted(hosts, key=lambda asn: (self._jitter(hypergiant, asn), asn))
        return frozenset(ordered[:count])

    def _jitter(self, hypergiant: str, asn: ASN) -> float:
        """A fixed uniform(0,1) draw per (HG, AS), derived from the engine
        seed so whole worlds are reproducible."""
        key = (hypergiant, asn)
        value = self._jitter_cache.get(key)
        if value is None:
            local = random.Random(f"{self._seed}:{hypergiant}:{asn}")
            value = local.random()
            self._jitter_cache[key] = value
        return value

    def _overlap_counts(self, current: dict[str, set[ASN]]) -> dict[ASN, int]:
        counts: dict[ASN, int] = {}
        for hypergiant in TOP4:
            for asn in current.get(hypergiant, ()):
                counts[asn] = counts.get(asn, 0) + 1
        return counts

    def _score(
        self,
        hypergiant: str,
        asn: ASN,
        snapshot: Snapshot,
        categories: dict[ASN, ConeCategory],
        overlap: dict[ASN, int],
    ) -> float:
        topology = self._topology
        weights = _CATEGORY_PREFERENCES.get(hypergiant, _CATEGORY_PREFERENCES["default"])
        score = weights[categories[asn]]
        region = _REGION_PREFERENCES.get(hypergiant)
        continent = topology.countries[asn].continent
        if region is not None:
            score *= region[continent]
        if hypergiant in _SA_RAMP_HGS and continent is Continent.SOUTH_AMERICA:
            # Ramp from 0.3x to ~2.2x across the study: exponential growth.
            progress = snapshot.months_since(topology.snapshots[0]) / max(
                1, topology.snapshots[-1].months_since(topology.snapshots[0])
            )
            score *= 0.3 + 1.9 * progress
        if asn in topology.eyeballs:
            score *= 2.0
        # HGs deploy where the users are: dominant national carriers are
        # far more attractive than the long tail.
        score *= 1.0 + 20.0 * self._market_share.get(asn, 0.0)
        progress = snapshot.months_since(topology.snapshots[0]) / max(
            1, topology.snapshots[-1].months_since(topology.snapshots[0])
        )
        affinity = _AFFINITY_BOOST_START + (_AFFINITY_BOOST_END - _AFFINITY_BOOST_START) * progress
        score *= 1.0 + affinity * overlap.get(asn, 0)
        return score

    def _grow(
        self,
        hypergiant: str,
        hosts: set[ASN],
        target: int,
        snapshot: Snapshot,
        alive: frozenset[ASN],
        categories: dict[ASN, ConeCategory],
        overlap: dict[ASN, int],
    ) -> None:
        needed = target - len(hosts)
        candidates = [asn for asn in alive if asn not in hosts]
        # Weighted sampling without replacement (Efraimidis-Spirakis): take
        # the top-k by u^(1/score) with a fixed per-(HG, AS) uniform u.  This
        # yields probability-proportional-to-score host mixes rather than a
        # hard cutoff, and the fixed u keeps selections persistent across
        # snapshots (hosts are rarely dropped once chosen).
        def selection_key(asn: ASN) -> float:
            score = self._score(hypergiant, asn, snapshot, categories, overlap)
            if score <= 0.0:
                return 0.0
            u = self._jitter(hypergiant, asn)
            return u ** (1.0 / score)

        candidates.sort(key=selection_key, reverse=True)
        hosts.update(candidates[:needed])

    def _shrink(
        self,
        hypergiant: str,
        hosts: set[ASN],
        target: int,
        categories: dict[ASN, ConeCategory],
    ) -> None:
        """Release hosts, stubs in North America first (Akamai's pattern)."""
        surplus = len(hosts) - target
        topology = self._topology

        def removal_key(asn: ASN) -> tuple:
            category = categories.get(asn, ConeCategory.STUB)
            in_north_america = topology.countries[asn].continent is Continent.NORTH_AMERICA
            return (category.rank, 0 if in_north_america else 1, self._jitter(hypergiant, asn))

        for asn in sorted(hosts, key=removal_key)[:surplus]:
            hosts.discard(asn)

    def _service_order(self, hypergiant: str) -> list[ASN]:
        """Deterministic preference order for cert-only ASes."""
        topology = self._topology
        ases = sorted(topology.graph.ases)
        # Third-party hosting rides on CDN-dense ASes: favour medium+ ASes
        # and let the per-HG jitter diversify choices.
        def key(asn: ASN) -> float:
            base = 1.0 + 0.2 * min(10, topology.graph.transit_degree(asn))
            return base * self._jitter("svc:" + hypergiant, asn)

        ases.sort(key=key, reverse=True)
        return ases
