"""Static hypergiant profiles: the 23 HGs of §4.6 and their fingerprints.

Each profile carries everything the *world builder* needs to make a HG's
servers behave like the real ones did, and everything the *methodology*
(§4.2-§4.5) later rediscovers from the outside:

* the certificate ``Organization`` string and the keyword the paper searches
  for case-insensitively;
* the domain portfolio, split into groups so certificates aggregate the way
  Figure 11 shows (e.g. one dominant ``*.googlevideo.com`` certificate);
* the HTTP(S) debug headers of Table 4 (Appendix A.5), with the paper's
  matching semantics — name-only matches, value prefix matches (``gws*``)
  and header-name prefix matches (``X-Netflix.*``);
* certificate policy: validity periods per era (Appendix A.3), Netflix's
  expired-certificate episode, Cloudflare's customer certificates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scan.handshake import UNKNOWN_STACK, StackFeatures, stack_features
from repro.timeline import Snapshot

__all__ = [
    "HeaderRule",
    "HypergiantProfile",
    "HYPERGIANTS",
    "HEADER_RULES",
    "STACK_PROFILES",
    "STOCK_STACKS",
    "TOP4",
    "profile",
    "stack_profile",
    "STANDARD_HEADERS",
]

#: Common standard headers §4.4 filters out before fingerprinting.
STANDARD_HEADERS: frozenset[str] = frozenset(
    name.lower()
    for name in (
        "Cache-Control",
        "Content-Length",
        "Content-Type",
        "Content-Encoding",
        "Date",
        "Expires",
        "Last-Modified",
        "ETag",
        "Connection",
        "Keep-Alive",
        "Accept-Ranges",
        "Vary",
        "Location",
        "Set-Cookie",
        "Transfer-Encoding",
        "Pragma",
        "Age",
        "Strict-Transport-Security",
        "X-Content-Type-Options",
        "X-Frame-Options",
        "X-XSS-Protection",
        "Alt-Svc",
        "P3P",
    )
)


@dataclass(frozen=True, slots=True)
class HeaderRule:
    """One Table 4 matching rule.

    ``name`` may end with ``*`` for a header-*name* prefix match
    (``X-Netflix.*``); ``value`` is ``None`` for name-only matches or may end
    with ``*`` for a value prefix match (``gws*``).  Matching is
    case-insensitive on names, case-sensitive on values (as served).
    """

    name: str
    value: str | None = None
    documented: bool = True

    def matches(self, header_name: str, header_value: str) -> bool:
        """Does a response header match this rule?"""
        lowered = header_name.lower()
        pattern = self.name.lower()
        if pattern.endswith("*"):
            if not lowered.startswith(pattern[:-1]):
                return False
        elif lowered != pattern:
            return False
        if self.value is None:
            return True
        if self.value.endswith("*"):
            return header_value.startswith(self.value[:-1])
        return header_value == self.value

    def matches_any(self, headers: dict[str, str]) -> bool:
        """Does any header of a response match this rule?"""
        return any(self.matches(name, value) for name, value in headers.items())


@dataclass(frozen=True, slots=True)
class HypergiantProfile:
    """Everything static about one hypergiant."""

    key: str                      # search keyword, e.g. "google"
    display_name: str             # e.g. "Google"
    organization: str             # certificate Organization, e.g. "Google LLC"
    #: Domain groups — each group becomes one (shared) certificate per era.
    #: The FIRST group is the off-net serving group (Fig. 11's dominant one).
    domain_groups: tuple[tuple[str, ...], ...]
    header_rules: tuple[HeaderRule, ...] = ()
    #: Home country code for the HG's own (on-net) ASes.
    home_country: str = "US"
    #: Number of on-net ASes the HG operates.
    on_net_as_count: int = 2
    #: Certificate validity in months, as (since_snapshot, months) steps.
    validity_steps: tuple[tuple[Snapshot, int], ...] = ((Snapshot(2000, 1), 12),)
    #: True for HGs that issue certificates *to customers* (Cloudflare).
    issues_customer_certificates: bool = False
    #: Fraction of off-net servers that omit fingerprint headers entirely
    #: (Netflix/Hulu only send debug headers to logged-in users, §7).
    headerless_fraction: float = 0.0
    #: Fraction of off-net servers answering with a bare default-nginx
    #: header (the Netflix quirk of §4.4).
    default_nginx_fraction: float = 0.0

    def validity_months(self, when: Snapshot) -> int:
        """Certificate validity period in force at ``when`` (Appendix A.3)."""
        months = self.validity_steps[0][1]
        for since, value in self.validity_steps:
            if when >= since:
                months = value
        return months

    @property
    def offnet_domains(self) -> tuple[str, ...]:
        """The domain group served from off-net caches."""
        return self.domain_groups[0]

    @property
    def all_domains(self) -> tuple[str, ...]:
        """Every domain across all groups."""
        return tuple(domain for group in self.domain_groups for domain in group)


def _hg(**kwargs) -> HypergiantProfile:
    return HypergiantProfile(**kwargs)


#: The 23 hypergiants examined in §4.6.
HYPERGIANTS: tuple[HypergiantProfile, ...] = (
    _hg(
        key="google",
        display_name="Google",
        organization="Google LLC",
        domain_groups=(
            ("*.googlevideo.com", "*.gvt1.com", "*.gvt2.com"),
            ("*.google.com", "*.google.com.br", "*.googleapis.com", "accounts.google.com"),
            ("*.youtube.com", "*.ytimg.com", "youtu.be"),
            ("*.gstatic.com", "*.googleusercontent.com"),
            ("*.doubleclick.net", "*.googlesyndication.com"),
        ),
        header_rules=(
            HeaderRule("Server", "gws*", documented=False),
            HeaderRule("Server", "gvs*", documented=False),
            HeaderRule("X-Google-Security-Signals", None, documented=False),
            HeaderRule("X_FW_Edge", None, documented=False),
            HeaderRule("X_FW_Cache", None, documented=False),
        ),
        on_net_as_count=3,
        validity_steps=((Snapshot(2000, 1), 3),),  # ~3 month certs
    ),
    _hg(
        key="facebook",
        display_name="Facebook",
        organization="Facebook, Inc.",
        domain_groups=(
            ("*.fbcdn.net", "*.facebook.com", "*.fbsbx.com"),
            ("*.instagram.com", "*.cdninstagram.com"),
            ("*.whatsapp.net", "*.whatsapp.com"),
            ("*.messenger.com",),
            ("*.fb.com", "*.facebook.net"),
        ),
        header_rules=(
            HeaderRule("Server", "proxygen*"),
            HeaderRule("X-FB-Debug", None),
            HeaderRule("X-FB-TRIP-ID", None),
        ),
        on_net_as_count=2,
        validity_steps=((Snapshot(2000, 1), 12),),
    ),
    _hg(
        key="netflix",
        display_name="Netflix",
        organization="Netflix, Inc.",
        domain_groups=(
            ("*.nflxvideo.net", "*.nflxso.net"),
            ("*.netflix.com", "*.nflximg.net", "*.nflxext.com"),
        ),
        header_rules=(
            HeaderRule("X-Netflix.*", None, documented=False),
            HeaderRule("X-TCP-Info", None, documented=False),
            HeaderRule(
                "Access-Control-Expose-Headers", "X-TCP-Info", documented=False
            ),
        ),
        on_net_as_count=1,
        # Oscillating validity; strategic shift to 35-day certs in 2019 (A.3).
        validity_steps=((Snapshot(2000, 1), 18), (Snapshot(2016, 7), 8), (Snapshot(2019, 4), 1)),
        headerless_fraction=0.05,
        default_nginx_fraction=0.35,
    ),
    _hg(
        key="akamai",
        display_name="Akamai",
        organization="Akamai Technologies, Inc.",
        domain_groups=(
            ("*.akamaized.net", "*.akamaihd.net", "*.akamai.net"),
            ("*.akamaiedge.net", "*.edgesuite.net", "*.edgekey.net"),
            ("*.akadns.net", "*.akam.net"),
        ),
        header_rules=(
            HeaderRule("Server", "AkamaiGHost"),
            HeaderRule("Server", "AkamaiNetStorage"),
            HeaderRule("Server", "Ghost"),  # only in China
        ),
        on_net_as_count=2,
        validity_steps=((Snapshot(2000, 1), 12),),
    ),
    _hg(
        key="alibaba",
        display_name="Alibaba",
        organization="Alibaba (China) Technology Co., Ltd.",
        domain_groups=(
            ("*.alicdn.com", "*.alikunlun.com"),
            ("*.aliyuncs.com", "*.taobao.com", "*.tmall.com"),
        ),
        header_rules=(
            HeaderRule("Server", "tengine*"),
            HeaderRule("Eagleid", None),
            HeaderRule("Server", "AliyunOSS*"),
        ),
        home_country="CN",
        on_net_as_count=2,
        validity_steps=((Snapshot(2000, 1), 12),),
    ),
    _hg(
        key="cloudflare",
        display_name="Cloudflare",
        organization="Cloudflare, Inc.",
        domain_groups=(
            ("*.cloudflare.com", "*.cloudflare-dns.com", "*.cloudflaressl.com"),
        ),
        header_rules=(
            HeaderRule("Server", "Cloudflare"),
            HeaderRule("cf-cache-status", None),
            HeaderRule("cf-ray", None),
            HeaderRule("cf-request-id", None),
        ),
        on_net_as_count=1,
        issues_customer_certificates=True,
        validity_steps=((Snapshot(2000, 1), 12),),
    ),
    _hg(
        key="amazon",
        display_name="Amazon",
        organization="Amazon.com, Inc.",
        domain_groups=(
            ("*.cloudfront.net",),
            ("*.amazonaws.com", "*.s3.amazonaws.com"),
            ("*.amazon.com", "*.media-amazon.com", "*.primevideo.com"),
        ),
        header_rules=(
            HeaderRule("x-amz-id-2", None),
            HeaderRule("x-amz-request-id", None),
            HeaderRule("Server", "AmazonS3"),
            HeaderRule("Server", "awselb*"),
            HeaderRule("X-Amz-Cf-Id", None),
            HeaderRule("X-Amz-Cf-Pop", None),
            HeaderRule("X-Cache", "Hit from cloudfront"),
            HeaderRule("x-amzn-RequestId", None),
        ),
        on_net_as_count=3,
        validity_steps=((Snapshot(2000, 1), 13),),
    ),
    _hg(
        key="cdnetworks",
        display_name="Cdnetworks",
        organization="CDNetworks Inc.",
        domain_groups=(("*.cdngc.net", "*.gccdn.net"),),
        header_rules=(HeaderRule("Server", "PWS/*"),),
        home_country="KR",
        on_net_as_count=1,
    ),
    _hg(
        key="limelight",
        display_name="Limelight",
        organization="Limelight Networks, Inc.",
        domain_groups=(("*.llnwd.net", "*.llnwi.net"),),
        header_rules=(
            HeaderRule("Server", "EdgePrism*"),
            HeaderRule("X-LLID", None),
        ),
        on_net_as_count=1,
    ),
    _hg(
        key="apple",
        display_name="Apple",
        organization="Apple Inc.",
        domain_groups=(
            ("*.aaplimg.com", "*.apple.com", "*.mzstatic.com"),
            ("*.icloud.com", "*.icloud-content.com"),
        ),
        header_rules=(HeaderRule("CDNUUID", None, documented=False),),
        on_net_as_count=2,
        validity_steps=((Snapshot(2000, 1), 24),),
    ),
    _hg(
        key="twitter",
        display_name="Twitter",
        organization="Twitter, Inc.",
        domain_groups=(
            ("*.twimg.com",),
            ("*.twitter.com", "t.co"),
        ),
        header_rules=(HeaderRule("Server", "tsa_a"),),
        on_net_as_count=1,
    ),
    _hg(
        key="microsoft",
        display_name="Microsoft",
        organization="Microsoft Corporation",
        domain_groups=(
            ("*.msedge.net", "*.azureedge.net"),
            ("*.microsoft.com", "*.windows.net", "*.office365.com"),
        ),
        header_rules=(HeaderRule("X-MSEdge-Ref", None),),
        on_net_as_count=3,
        # Median 1 year (2013-16), 1-2 years (2016-17), 2 years (2018-19).
        validity_steps=((Snapshot(2000, 1), 12), (Snapshot(2016, 1), 18), (Snapshot(2018, 1), 24)),
    ),
    _hg(
        key="fastly",
        display_name="Fastly",
        organization="Fastly, Inc.",
        domain_groups=(("*.fastly.net", "*.fastlylb.net"),),
        header_rules=(HeaderRule("X-Served-By", "cache-*"),),
        on_net_as_count=1,
    ),
    _hg(
        key="verizon",
        display_name="Verizon",
        organization="Verizon Digital Media Services",
        domain_groups=(("*.edgecastcdn.net", "*.vdms.com"),),
        header_rules=(HeaderRule("Server", "ECAcc*"),),
        on_net_as_count=1,
    ),
    _hg(
        key="incapsula",
        display_name="Incapsula",
        organization="Incapsula Inc.",
        domain_groups=(("*.incapdns.net",),),
        header_rules=(HeaderRule("X-CDN", "Incapsula"),),
        on_net_as_count=1,
    ),
    _hg(
        key="hulu",
        display_name="Hulu",
        organization="Hulu, LLC",
        domain_groups=(("*.hulu.com", "*.huluim.com", "*.hulustream.com"),),
        header_rules=(
            HeaderRule("X-Hulu-Request-Id", None, documented=False),
            HeaderRule("X-HULU-NGINX", None, documented=False),
        ),
        on_net_as_count=1,
        # Hulu only sends debug headers to logged-in users (§7): scans see
        # nothing confirmable.
        headerless_fraction=1.0,
    ),
    # HGs with identifiable organisations but no usable header fingerprints
    # (Appendix A.5: "we were not able to identify unique HTTP(S) headers").
    _hg(
        key="bamtech",
        display_name="Bamtech",
        organization="BAMTech Media",
        domain_groups=(("*.bamgrid.com", "*.mlb.com"),),
        on_net_as_count=1,
    ),
    _hg(
        key="cdn77",
        display_name="CDN77",
        organization="CDN77 s.r.o.",
        domain_groups=(("*.cdn77.org", "*.rsc.cdn77.org"),),
        home_country="CZ",
        on_net_as_count=1,
    ),
    _hg(
        key="cachefly",
        display_name="Cachefly",
        organization="CacheFly Inc.",
        domain_groups=(("*.cachefly.net",),),
        on_net_as_count=1,
    ),
    _hg(
        key="chinacache",
        display_name="Chinacache",
        organization="ChinaCache Holdings Ltd.",
        domain_groups=(("*.ccgslb.com", "*.ccgslb.net"),),
        home_country="CN",
        on_net_as_count=1,
    ),
    _hg(
        key="disney",
        display_name="Disney",
        organization="Disney Streaming Services",
        domain_groups=(("*.disneyplus.com", "*.dssott.com"),),
        on_net_as_count=1,
    ),
    _hg(
        key="highwinds",
        display_name="Highwinds",
        organization="Highwinds Network Group",
        domain_groups=(("*.hwcdn.net",),),
        on_net_as_count=1,
    ),
    _hg(
        key="yahoo",
        display_name="Yahoo",
        organization="Yahoo Holdings, Inc.",
        domain_groups=(("*.yimg.com", "*.yahoo.com"),),
        on_net_as_count=2,
    ),
)

_BY_KEY = {hg.key: hg for hg in HYPERGIANTS}

#: Stock TLS stacks ordinary web servers run — the ordering classes the
#: active-fingerprinting literature cannot attribute to any one operator.
#: Background servers (and HGs running unmodified stock software) draw
#: from this pool, so the TLS-stack signal has realistic noise to abstain
#: on rather than a magic per-operator oracle.
STOCK_STACKS: tuple[StackFeatures, ...] = (
    stack_features(("http/1.1",), "1.0", "nginx"),
    stack_features(("h2", "http/1.1"), "1.2", "nginx"),
    stack_features(("http/1.1",), "1.0", "apache"),
    stack_features(("h2", "http/1.1"), "1.2", "apache"),
    stack_features(("http/1.1",), "1.2", "iis"),
    stack_features(("http/1.1",), "1.0", "lighttpd"),
    stack_features(("h2", "http/1.1"), "1.2", "openresty"),
)

#: Per-HG TLS stack features (arXiv:2206.13230): the handshake behaviour
#: of each hypergiant's *proprietary* serving stack.  HGs absent from the
#: table run stock software — their servers draw from
#: :data:`STOCK_STACKS` and the TLS-stack signal abstains on them.
STACK_PROFILES: dict[str, StackFeatures] = {
    "google": stack_features(("h2", "h3", "http/1.1"), "1.2", "gfe"),
    "facebook": stack_features(("h2", "h3", "http/1.1"), "1.2", "proxygen"),
    "netflix": stack_features(("h2", "http/1.1"), "1.2", "oca-nginx"),
    "akamai": stack_features(("h2", "h3", "http/1.1"), "1.2", "ghost"),
    "cloudflare": stack_features(("h2", "h3", "http/1.1"), "1.3", "cf-nginx"),
    "amazon": stack_features(("h2", "http/1.1"), "1.2", "cloudfront"),
    "apple": stack_features(("h2", "http/1.1"), "1.2", "apple-ats"),
    "microsoft": stack_features(("h2", "http/1.1"), "1.2", "msedge"),
    "fastly": stack_features(("h2", "h3", "http/1.1"), "1.2", "fastly-h2o"),
    "alibaba": stack_features(("h2", "http/1.1"), "1.2", "tengine"),
    "verizon": stack_features(("h2", "http/1.1"), "1.2", "ecs"),
    "cdnetworks": stack_features(("h2", "http/1.1"), "1.2", "pws"),
    "limelight": stack_features(("h2", "http/1.1"), "1.2", "edgeprism"),
    "twitter": stack_features(("h2", "http/1.1"), "1.2", "tsa"),
    "incapsula": stack_features(("h2", "http/1.1"), "1.2", "incap"),
}


def stack_profile(key: str) -> StackFeatures:
    """The TLS stack features a hypergiant's servers exhibit.

    Returns :data:`~repro.scan.handshake.UNKNOWN_STACK` for HGs running
    stock software — the signal layer treats that as "nothing to match".
    """
    return STACK_PROFILES.get(key, UNKNOWN_STACK)

#: Table 4 as a key → rules mapping.
HEADER_RULES: dict[str, tuple[HeaderRule, ...]] = {
    hg.key: hg.header_rules for hg in HYPERGIANTS
}

#: The four largest hypergiants by off-net AS footprint (§6.6).
TOP4: tuple[str, ...] = ("google", "netflix", "facebook", "akamai")


def profile(key: str) -> HypergiantProfile:
    """Look a hypergiant profile up by keyword."""
    try:
        return _BY_KEY[key]
    except KeyError:
        raise KeyError(f"unknown hypergiant {key!r}") from None
