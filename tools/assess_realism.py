"""Score a generated world against the paper's distributions.

Builds a named scenario's world (any seed/scale) and runs the realism
scorer (:mod:`repro.scenario.realism`) over it: stub share, cone-census
mix, AS-census growth, regional mix, and the Fig. 3 growth-curve shapes.
Each metric is compared against a paper-anchored band; the world is
``realistic`` when every metric lands inside its band.

Usage::

    python tools/assess_realism.py                           # paper-default
    python tools/assess_realism.py --scenario skewed --scale 0.01
    python tools/assess_realism.py --seed 11 --out realism.json
    python tools/assess_realism.py --strict                  # exit 1 if flagged

The JSON report (``--out``) is versioned (schema ``repro.realism-report/1``)
and consumed by ``tools/check_perf_gate.py --expect-realism`` in CI's
realism-gate job; ``docs/scenarios.md`` documents the runbook and
``docs/methodology.md`` maps every metric to its paper figure.

Exit status: 0 on success; with ``--strict``, 1 when the world is flagged
unrealistic.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # runnable without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.scenario import assess_world, get_scenario, scenario_names  # noqa: E402

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Score a generated world against the paper's distributions."
    )
    parser.add_argument(
        "--scenario",
        default="paper-default",
        help="named scenario to build and score "
        f"(registered: {', '.join(scenario_names())}; default: paper-default)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="world seed (default: the scenario's own default)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="Internet scale factor (default: the scenario's own default)",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="OUT.json",
        help="also write the versioned realism report "
        "(schema repro.realism-report/1) as JSON",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit non-zero when the world is flagged unrealistic "
        "(CI wires the verdict through check_perf_gate.py instead)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        spec = get_scenario(args.scenario)
    except KeyError as error:
        print(f"error: {error.args[0]}")
        return 2
    world = spec.build(seed=args.seed, scale=args.scale)
    report = assess_world(world)
    meta = report["scenario"]
    print(
        f"realism of scenario {meta['name']!r} "
        f"(seed={meta['seed']}, scale={meta['scale']}):"
    )
    for metric in report["metrics"]:
        low, high = metric["band"]
        flag = "ok  " if metric["ok"] else "FLAG"
        print(
            f"  {flag} {metric['name']:<24} {metric['value']:<8g} "
            f"band [{low:g}, {high:g}]  ({metric['paper_ref']})"
        )
    verdict = "realistic" if report["realistic"] else "UNREALISTIC"
    print(
        f"verdict: {verdict} — {report['passed']}/{report['total']} metrics "
        f"inside their paper bands (score {report['score']})"
    )
    if args.out:
        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(
            json.dumps(report, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        print(f"wrote realism report to {path}")
    if args.strict and not report["realistic"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
