"""Repository tooling that is not part of the ``repro`` package proper.

Importable (``tools.check_report``) so the test suite and benchmarks can
exercise the same comparison logic CI runs as a script.
"""
