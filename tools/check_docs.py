"""Markdown link and anchor checker for the repo's documentation.

The CI docs job's gate::

    python tools/check_docs.py README.md DESIGN.md docs/

For every markdown file named (directories recurse to their ``*.md``),
every link outside fenced code blocks is checked:

* relative file links must point at an existing file or directory;
* ``#fragment`` parts (and bare ``#anchor`` self-links) must match a
  heading in the target file, using GitHub's slug rules (lowercase,
  punctuation stripped, spaces to hyphens);
* ``http(s)``/``mailto`` links are recorded but not fetched — CI must
  not depend on the network.

Exit 0 when every link resolves; exit 1 listing each broken link as
``file:line: problem``.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

__all__ = ["check_files", "heading_anchors", "iter_links", "main"]

#: ``[text](target)`` — images share the syntax and are checked too.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

#: A markdown heading line (fenced code is stripped before matching).
_HEADING = re.compile(r"^#{1,6}\s+(.*)$")

#: Characters GitHub drops when slugging a heading.
_SLUG_DROP = re.compile(r"[^\w\s-]")


def _strip_fences(text: str) -> list[str]:
    """The file's lines with fenced code blocks blanked (links and
    headings inside fences are examples, not navigation)."""
    lines = []
    fenced = False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            fenced = not fenced
            lines.append("")
            continue
        lines.append("" if fenced else line)
    return lines


def heading_anchors(path: Path) -> set[str]:
    """Every anchor a file's headings define, GitHub slug style."""
    anchors: set[str] = set()
    counts: dict[str, int] = {}
    for line in _strip_fences(path.read_text(encoding="utf-8")):
        match = _HEADING.match(line)
        if not match:
            continue
        # Inline code/emphasis markers don't survive into the slug.
        title = re.sub(r"[`*_]", "", match.group(1).strip())
        slug = _SLUG_DROP.sub("", title.lower()).strip().replace(" ", "-")
        slug = re.sub(r"-{2,}", "-", slug)
        # Duplicate headings get -1, -2, ... suffixes.
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def iter_links(path: Path):
    """``(line_number, target)`` for every markdown link in a file."""
    for number, line in enumerate(
        _strip_fences(path.read_text(encoding="utf-8")), start=1
    ):
        for match in _LINK.finditer(line):
            yield number, match.group(1)


def _relative(path: Path, root: Path) -> str:
    """``path`` relative to ``root`` for display; absolute when outside."""
    try:
        return str(path.relative_to(root))
    except ValueError:
        return str(path)


def _check_file(path: Path, root: Path) -> list[str]:
    problems = []
    for number, target in iter_links(path):
        where = f"{_relative(path, root)}:{number}"
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        base, _, fragment = target.partition("#")
        destination = path if not base else (path.parent / base).resolve()
        if not destination.exists():
            problems.append(f"{where}: broken link {target!r} "
                            f"({destination} does not exist)")
            continue
        if not fragment:
            continue
        if destination.is_dir():
            # A directory defines no headings; an anchored link into one
            # can never resolve and used to slip through silently.
            problems.append(
                f"{where}: anchor #{fragment} targets the directory "
                f"{_relative(destination, root)}, which has no headings"
            )
            continue
        if fragment not in heading_anchors(destination):
            problems.append(
                f"{where}: anchor #{fragment} not found in "
                f"{_relative(destination, root)}"
            )
    return problems


def check_files(paths: list[Path], root: Path | None = None) -> list[str]:
    """Every broken link/anchor across ``paths`` (empty = all good).
    Directories recurse to their ``*.md`` files."""
    root = (root or Path.cwd()).resolve()
    files: list[Path] = []
    for path in paths:
        path = path.resolve()
        if path.is_dir():
            files.extend(sorted(path.rglob("*.md")))
        else:
            files.append(path)
    problems = []
    for path in files:
        problems.extend(_check_file(path, root))
    return problems


def build_parser() -> argparse.ArgumentParser:
    """The checker's argparse parser."""
    parser = argparse.ArgumentParser(
        prog="check_docs",
        description="Check markdown links and heading anchors "
        "(relative targets only; no network access).",
    )
    parser.add_argument(
        "paths",
        nargs="+",
        help="markdown files or directories (directories recurse to *.md)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    paths = [Path(p) for p in args.paths]
    problems = check_files(paths)
    if problems:
        print(f"FAIL: {len(problems)} broken link(s)")
        for problem in problems:
            print(f"  {problem}")
        return 1
    count = sum(
        len(list(p.rglob("*.md"))) if p.is_dir() else 1 for p in paths
    )
    print(f"OK: links and anchors resolve across {count} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
