"""CI gate over the tracked perf summaries.

Two modes, selected by flag:

* **Columnar mode** (the default) consumes ``perf_columnar_summary.json``
  (published by
  ``benchmarks/bench_pipeline_perf.py::test_columnar_vs_jsonl_cold_ingest``):
  cold ingest and full-run wall-clock for the same dataset in both corpus
  formats, plus a parity matrix asserting the output is indifferent to
  the format.  The gate fails when the columnar cold ingest drops below
  the required multiple of the JSONL baseline, or when any parity cell
  went false.

* **Scaling mode** (``--expect-parallel-speedup``) consumes
  ``perf_scaling_summary.json`` (published by
  ``benchmarks/bench_parallel_scaling.py``): wall-clock per ``jobs``
  value at each scale point, the host CPU count, and the shard parity
  matrix.  Parity is enforced unconditionally — sharded output must be
  bit-identical to serial everywhere.  The speedup bar (every parallel
  jobs value at least matches serial, within ``--speedup-tolerance``) is
  enforced only when the summary records >= 2 cores: a single-core
  runner cannot honestly measure parallel speedup, and the gate says so
  instead of silently passing or spuriously failing.

Usage::

    python tools/check_perf_gate.py benchmarks/output/perf_columnar_summary.json
    python tools/check_perf_gate.py summary.json --min-ingest-speedup 5
    python tools/check_perf_gate.py benchmarks/output/perf_scaling_summary.json \
        --expect-parallel-speedup

Exit status: 0 when every bar holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["build_parser", "check_summary", "check_scaling_summary", "main"]

#: Keys a columnar summary must carry for the gate to be meaningful.
REQUIRED_KEYS = (
    "jsonl_ingest_seconds",
    "columnar_ingest_seconds",
    "ingest_speedup",
    "run_speedup",
    "parity",
    "cpu_count",
)

#: Keys a scaling summary must carry (``kind`` guards against pointing
#: the scaling gate at the wrong summary file).
SCALING_REQUIRED_KEYS = ("kind", "cpu_count", "jobs", "runs", "speedups", "parity")


def check_summary(summary: dict, min_ingest_speedup: float) -> list[str]:
    """Every columnar-mode gate violation, as human-readable strings."""
    problems = [
        f"summary is missing required key {key!r}"
        for key in REQUIRED_KEYS
        if key not in summary
    ]
    if problems:
        return problems
    speedup = summary["ingest_speedup"]
    if not isinstance(speedup, (int, float)) or speedup < min_ingest_speedup:
        problems.append(
            f"columnar cold ingest is only {speedup}x the JSONL baseline "
            f"(gate: >={min_ingest_speedup}x) — "
            f"jsonl {summary['jsonl_ingest_seconds']}s vs "
            f"columnar {summary['columnar_ingest_seconds']}s"
        )
    broken = [label for label, ok in summary["parity"].items() if not ok]
    if broken:
        problems.append(
            "funnel/ingest parity between formats broke under: "
            + ", ".join(sorted(broken))
        )
    return problems


def check_scaling_summary(summary: dict, tolerance: float) -> list[str]:
    """Every scaling-mode gate violation, as human-readable strings.

    Parity violations always gate.  Wall-clock violations gate only on
    hosts whose recorded ``cpu_count`` is >= 2 — the single-core
    downgrade is explicit in the gate's output, never silent.
    """
    problems = [
        f"scaling summary is missing required key {key!r}"
        for key in SCALING_REQUIRED_KEYS
        if key not in summary
    ]
    if problems:
        return problems
    if summary["kind"] != "parallel-scaling":
        return [
            f"summary kind is {summary['kind']!r}, expected 'parallel-scaling' "
            "(is this perf_scaling_summary.json?)"
        ]
    broken = [label for label, ok in summary["parity"].items() if not ok]
    if broken:
        problems.append(
            "sharded runs are not bit-identical to serial under: "
            + ", ".join(sorted(broken))
        )
    cpu_count = summary["cpu_count"]
    if cpu_count < 2:
        # Parity still gated above; wall-clock cannot be.
        return problems
    for scale_key, runs in summary["runs"].items():
        baseline = runs.get(f"jobs={min(summary['jobs'])}")
        if baseline is None:
            problems.append(f"{scale_key}: no serial baseline run recorded")
            continue
        bar = baseline["wall_seconds"] * (1.0 + tolerance)
        for jobs_key, row in runs.items():
            if jobs_key == f"jobs={min(summary['jobs'])}":
                continue
            if row["wall_seconds"] > bar:
                problems.append(
                    f"{scale_key} {jobs_key}: {row['wall_seconds']}s is slower "
                    f"than serial {baseline['wall_seconds']}s "
                    f"(+{tolerance:.0%} tolerance) on {cpu_count} cores — "
                    "sharded parallel lost to serial"
                )
    return problems


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Enforce the tracked perf-summary bars in CI."
    )
    parser.add_argument(
        "summary",
        type=Path,
        help="path to perf_columnar_summary.json (default mode) or "
        "perf_scaling_summary.json (with --expect-parallel-speedup)",
    )
    parser.add_argument(
        "--min-ingest-speedup",
        type=float,
        default=5.0,
        help="minimum cold-ingest speedup of columnar over JSONL (default: 5)",
    )
    parser.add_argument(
        "--expect-parallel-speedup",
        action="store_true",
        help="scaling mode: require every parallel jobs value to at least "
        "match the serial wall-clock (enforced only when the summary "
        "records >= 2 CPU cores; shard/serial parity is enforced "
        "unconditionally)",
    )
    parser.add_argument(
        "--speedup-tolerance",
        type=float,
        default=0.05,
        help="scaling mode: fractional wall-clock noise allowance before "
        "jobs=N counts as slower than serial (default: 0.05)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        summary = json.loads(args.summary.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"FAIL: perf summary not found: {args.summary}")
        return 1
    except json.JSONDecodeError as error:
        print(f"FAIL: perf summary is not valid JSON: {error}")
        return 1

    if args.expect_parallel_speedup:
        problems = check_scaling_summary(summary, args.speedup_tolerance)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        cpu_count = summary["cpu_count"]
        if cpu_count < 2:
            print(
                f"OK: shard/serial parity holds ({len(summary['parity'])} "
                f"cells); speedup bar SKIPPED — summary records "
                f"{cpu_count} CPU core(s), parallel wall-clock is not "
                "measurable on this host"
            )
        else:
            print(
                f"OK: shard/serial parity holds ({len(summary['parity'])} "
                f"cells); every parallel jobs value matched or beat serial "
                f"on {cpu_count} cores — speedups: "
                + json.dumps(summary["speedups"], sort_keys=True)
            )
        return 0

    problems = check_summary(summary, args.min_ingest_speedup)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"OK: columnar cold ingest {summary['ingest_speedup']}x JSONL "
        f"(gate >={args.min_ingest_speedup}x); full run "
        f"{summary['run_speedup']}x; parity holds for "
        + ", ".join(sorted(summary["parity"]))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
