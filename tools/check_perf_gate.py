"""CI gate over the tracked perf summaries.

Five modes, selected by flag:

* **Columnar mode** (the default) consumes ``perf_columnar_summary.json``
  (published by
  ``benchmarks/bench_pipeline_perf.py::test_columnar_vs_jsonl_cold_ingest``):
  cold ingest and full-run wall-clock for the same dataset in both corpus
  formats, plus a parity matrix asserting the output is indifferent to
  the format.  The gate fails when the columnar cold ingest drops below
  the required multiple of the JSONL baseline, or when any parity cell
  went false.

* **Scaling mode** (``--expect-parallel-speedup``) consumes
  ``perf_scaling_summary.json`` (published by
  ``benchmarks/bench_parallel_scaling.py``): wall-clock per ``jobs``
  value at each scale point, the host CPU count, and the shard parity
  matrix.  Parity is enforced unconditionally — sharded output must be
  bit-identical to serial everywhere.  The speedup bar (every parallel
  jobs value at least matches serial, within ``--speedup-tolerance``) is
  enforced only when the summary records >= 2 cores: a single-core
  runner cannot honestly measure parallel speedup, and the gate says so
  instead of silently passing or spuriously failing.

* **Serve mode** (``--expect-serve``) consumes
  ``perf_serve_summary.json`` (published by
  ``benchmarks/bench_serve_load.py``): a concurrent query storm against
  a live delta ingest.  Enforced unconditionally: zero query failures,
  served/batch parity in every cell, queries answered (successfully)
  *during* the ingest, and the delta proof — the idle pass skipped every
  indexed snapshot without committing, and the drop pass re-analysed
  exactly one.  The latency/throughput bars (``--max-p99-ms``,
  ``--min-qps``) are enforced only on >= 2 recorded cores: a single-core
  host serializes the daemon against its clients, and the gate says so
  instead of failing on physics.

* **Signals mode** (``--expect-signals``) consumes
  ``perf_signals_summary.json`` (published by
  ``benchmarks/bench_hide_and_seek.py``): the adversarial evasion suite
  comparing the header-only baseline against the multi-signal confirm
  engine.  Enforced unconditionally (every bar is a correctness bar, no
  wall-clock involved): the parity matrix holds in every cell, zero
  false confirmations against world ground truth under *either*
  configuration in *every* scenario, the header-only baseline misses
  off-nets in every adversarial scenario (the strategies exist to fool
  it), and the multi-signal path out-confirms the baseline there while
  at least matching it on the clean control world.

* **Realism mode** (``--expect-realism``) consumes a
  ``repro.realism-report/1`` document (published by
  ``tools/assess_realism.py``): the paper-anchored distribution scores of
  a generated world.  The gate checks the report's structure (every
  metric carries a value, a band, and a verdict bit) and then the
  verdict itself: by default the world must be ``realistic`` (every
  metric inside its band); with ``--expect-unrealistic`` the world must
  instead be *flagged* — the negative control proving the scorer can
  tell a skewed world from the paper's Internet.

Usage::

    python tools/check_perf_gate.py benchmarks/output/perf_columnar_summary.json
    python tools/check_perf_gate.py summary.json --min-ingest-speedup 5
    python tools/check_perf_gate.py benchmarks/output/perf_scaling_summary.json \
        --expect-parallel-speedup
    python tools/check_perf_gate.py benchmarks/output/perf_serve_summary.json \
        --expect-serve
    python tools/check_perf_gate.py benchmarks/output/perf_signals_summary.json \
        --expect-signals
    python tools/check_perf_gate.py realism_default.json --expect-realism
    python tools/check_perf_gate.py realism_skewed.json \
        --expect-realism --expect-unrealistic

Exit status: 0 when every bar holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = [
    "build_parser",
    "check_summary",
    "check_realism_summary",
    "check_scaling_summary",
    "check_serve_summary",
    "check_signals_summary",
    "main",
]

#: Keys a columnar summary must carry for the gate to be meaningful.
REQUIRED_KEYS = (
    "jsonl_ingest_seconds",
    "columnar_ingest_seconds",
    "ingest_speedup",
    "run_speedup",
    "parity",
    "cpu_count",
)

#: Keys a scaling summary must carry (``kind`` guards against pointing
#: the scaling gate at the wrong summary file).
SCALING_REQUIRED_KEYS = ("kind", "cpu_count", "jobs", "runs", "speedups", "parity")

#: Keys a signals summary must carry for the signals gate to be
#: meaningful (``kind`` guards against pointing the gate at the wrong
#: summary file).
SIGNALS_REQUIRED_KEYS = ("kind", "signals", "policy", "scenarios", "parity")

#: Keys every evasion scenario's baseline/multi cells must carry.
SIGNALS_CELL_KEYS = ("confirmed", "false_confirmations")

#: Keys a realism report must carry (``schema`` guards against pointing
#: the realism gate at the wrong JSON document).
REALISM_REQUIRED_KEYS = (
    "schema",
    "scenario",
    "metrics",
    "passed",
    "total",
    "score",
    "realistic",
)

#: Keys every scored realism metric must carry.
REALISM_METRIC_KEYS = ("name", "value", "expected", "band", "ok", "paper_ref")

#: The realism-report schema this gate understands.
REALISM_SCHEMA = "repro.realism-report/1"

#: Keys a serve summary must carry for the serve gate to be meaningful.
SERVE_REQUIRED_KEYS = (
    "kind",
    "cpu_count",
    "queries_total",
    "query_failures",
    "qps",
    "latency_p50_ms",
    "latency_p99_ms",
    "queries_during_ingest",
    "queries_during_ingest_all_ok",
    "ingest",
    "parity",
)


def check_summary(summary: dict, min_ingest_speedup: float) -> list[str]:
    """Every columnar-mode gate violation, as human-readable strings."""
    problems = [
        f"summary is missing required key {key!r}"
        for key in REQUIRED_KEYS
        if key not in summary
    ]
    if problems:
        return problems
    speedup = summary["ingest_speedup"]
    if not isinstance(speedup, (int, float)) or speedup < min_ingest_speedup:
        problems.append(
            f"columnar cold ingest is only {speedup}x the JSONL baseline "
            f"(gate: >={min_ingest_speedup}x) — "
            f"jsonl {summary['jsonl_ingest_seconds']}s vs "
            f"columnar {summary['columnar_ingest_seconds']}s"
        )
    broken = [label for label, ok in summary["parity"].items() if not ok]
    if broken:
        problems.append(
            "funnel/ingest parity between formats broke under: "
            + ", ".join(sorted(broken))
        )
    return problems


def check_scaling_summary(summary: dict, tolerance: float) -> list[str]:
    """Every scaling-mode gate violation, as human-readable strings.

    Parity violations always gate.  Wall-clock violations gate only on
    hosts whose recorded ``cpu_count`` is >= 2 — the single-core
    downgrade is explicit in the gate's output, never silent.
    """
    problems = [
        f"scaling summary is missing required key {key!r}"
        for key in SCALING_REQUIRED_KEYS
        if key not in summary
    ]
    if problems:
        return problems
    if summary["kind"] != "parallel-scaling":
        return [
            f"summary kind is {summary['kind']!r}, expected 'parallel-scaling' "
            "(is this perf_scaling_summary.json?)"
        ]
    broken = [label for label, ok in summary["parity"].items() if not ok]
    if broken:
        problems.append(
            "sharded runs are not bit-identical to serial under: "
            + ", ".join(sorted(broken))
        )
    cpu_count = summary["cpu_count"]
    if cpu_count < 2:
        # Parity still gated above; wall-clock cannot be.
        return problems
    for scale_key, runs in summary["runs"].items():
        baseline = runs.get(f"jobs={min(summary['jobs'])}")
        if baseline is None:
            problems.append(f"{scale_key}: no serial baseline run recorded")
            continue
        bar = baseline["wall_seconds"] * (1.0 + tolerance)
        for jobs_key, row in runs.items():
            if jobs_key == f"jobs={min(summary['jobs'])}":
                continue
            if row["wall_seconds"] > bar:
                problems.append(
                    f"{scale_key} {jobs_key}: {row['wall_seconds']}s is slower "
                    f"than serial {baseline['wall_seconds']}s "
                    f"(+{tolerance:.0%} tolerance) on {cpu_count} cores — "
                    "sharded parallel lost to serial"
                )
    return problems


def check_serve_summary(
    summary: dict, max_p99_ms: float, min_qps: float
) -> list[str]:
    """Every serve-mode gate violation, as human-readable strings.

    Correctness (failures, parity, availability-during-ingest, the
    delta-only proof) always gates; the latency/throughput bars gate
    only when the summary records >= 2 CPU cores.
    """
    problems = [
        f"serve summary is missing required key {key!r}"
        for key in SERVE_REQUIRED_KEYS
        if key not in summary
    ]
    if problems:
        return problems
    if summary["kind"] != "serve-load":
        return [
            f"summary kind is {summary['kind']!r}, expected 'serve-load' "
            "(is this perf_serve_summary.json?)"
        ]
    if summary["query_failures"]:
        problems.append(
            f"{summary['query_failures']} of {summary['queries_total']} "
            "storm queries failed"
        )
    broken = [label for label, ok in summary["parity"].items() if not ok]
    if broken:
        problems.append(
            "served answers diverge from the fresh batch run for: "
            + ", ".join(sorted(broken))
        )
    if not summary["queries_during_ingest"]:
        problems.append(
            "no query completed during the ingest window — availability "
            "under ingest was not exercised"
        )
    elif not summary["queries_during_ingest_all_ok"]:
        problems.append(
            f"of {summary['queries_during_ingest']} queries answered during "
            "the ingest, at least one failed"
        )
    ingest = summary["ingest"]
    baseline = ingest.get("baseline_snapshots", 0)
    if ingest.get("idle_pass_skipped") != baseline or ingest.get(
        "idle_pass_committed"
    ):
        problems.append(
            f"idle pass was not a pure skip: skipped "
            f"{ingest.get('idle_pass_skipped')} of {baseline}, "
            f"committed={ingest.get('idle_pass_committed')}"
        )
    if len(ingest.get("delta_pass_ingested", ())) != 1 or (
        ingest.get("delta_pass_skipped") != baseline
    ):
        problems.append(
            "the drop pass was not delta-only: re-analysed "
            f"{ingest.get('delta_pass_ingested')} and skipped "
            f"{ingest.get('delta_pass_skipped')} of {baseline} unchanged "
            "snapshots (expected exactly 1 re-analysed, all others skipped)"
        )
    if summary["cpu_count"] < 2:
        # Wall-clock bars are not measurable; correctness gated above.
        return problems
    if summary["latency_p99_ms"] > max_p99_ms:
        problems.append(
            f"query latency p99 {summary['latency_p99_ms']}ms exceeds "
            f"{max_p99_ms}ms on {summary['cpu_count']} cores"
        )
    if summary["qps"] < min_qps:
        problems.append(
            f"throughput {summary['qps']} qps is below {min_qps} qps "
            f"on {summary['cpu_count']} cores"
        )
    return problems


def check_signals_summary(summary: dict) -> list[str]:
    """Every signals-mode gate violation, as human-readable strings.

    Everything here is a correctness bar, so everything is enforced
    unconditionally — there is no wall-clock measurement to downgrade
    on single-core hosts.
    """
    problems = [
        f"signals summary is missing required key {key!r}"
        for key in SIGNALS_REQUIRED_KEYS
        if key not in summary
    ]
    if problems:
        return problems
    if summary["kind"] != "signals-evasion":
        return [
            f"summary kind is {summary['kind']!r}, expected 'signals-evasion' "
            "(is this perf_signals_summary.json?)"
        ]
    broken = [label for label, ok in summary["parity"].items() if not ok]
    if broken:
        problems.append(
            "funnel/signal parity broke under: " + ", ".join(sorted(broken))
        )
    scenarios = summary["scenarios"]
    if not scenarios:
        problems.append("summary records no evasion scenarios")
        return problems
    adversarial_seen = control_seen = False
    for label in sorted(scenarios):
        cell = scenarios[label]
        missing = [
            f"scenario {label!r} is missing {side}.{key}"
            for side in ("baseline", "multi")
            for key in SIGNALS_CELL_KEYS
            if key not in cell.get(side, {})
        ]
        if missing:
            problems += missing
            continue
        baseline, multi = cell["baseline"], cell["multi"]
        # The hard floor everywhere: ground truth is sacred under both
        # configurations — a multi-signal engine that buys recall with
        # false confirmations has failed.
        for side_name, side in (("header-only", baseline), ("multi-signal", multi)):
            if side["false_confirmations"]:
                problems.append(
                    f"scenario {label!r}: {side_name} confirmed "
                    f"{side['false_confirmations']} AS(es) outside world "
                    "ground truth"
                )
        if multi["confirmed"] < baseline["confirmed"]:
            problems.append(
                f"scenario {label!r}: multi-signal confirmed "
                f"{multi['confirmed']} < header-only baseline "
                f"{baseline['confirmed']}"
            )
        if cell.get("adversarial"):
            adversarial_seen = True
            truth = cell.get("truth_ases", 0)
            if baseline["confirmed"] >= truth:
                problems.append(
                    f"scenario {label!r}: the header-only baseline was not "
                    f"fooled (confirmed {baseline['confirmed']} of {truth} "
                    "true ASes) — the scenario exercises nothing"
                )
            if multi["confirmed"] <= baseline["confirmed"]:
                problems.append(
                    f"scenario {label!r}: multi-signal ({multi['confirmed']}) "
                    "did not out-confirm the fooled baseline "
                    f"({baseline['confirmed']})"
                )
        else:
            control_seen = True
            if not baseline["confirmed"]:
                problems.append(
                    f"control scenario {label!r} confirmed nothing — the "
                    "suite ran against an empty world"
                )
    if not adversarial_seen:
        problems.append("summary records no adversarial scenario")
    if not control_seen:
        problems.append("summary records no clean control scenario")
    return problems


def check_realism_summary(
    summary: dict, expect_unrealistic: bool = False
) -> list[str]:
    """Every realism-mode gate violation, as human-readable strings.

    Structure is checked first (schema tag, per-metric keys, the
    passed/total arithmetic), then the verdict: ``realistic`` must be
    true by default, false — with at least one out-of-band metric to
    point at — under ``expect_unrealistic``.
    """
    problems = [
        f"realism report is missing required key {key!r}"
        for key in REALISM_REQUIRED_KEYS
        if key not in summary
    ]
    if problems:
        return problems
    if summary["schema"] != REALISM_SCHEMA:
        return [
            f"report schema is {summary['schema']!r}, expected "
            f"{REALISM_SCHEMA!r} (is this an assess_realism.py report?)"
        ]
    metrics = summary["metrics"]
    if not metrics:
        return ["report scores no metrics at all"]
    for metric in metrics:
        missing = [key for key in REALISM_METRIC_KEYS if key not in metric]
        if missing:
            problems.append(
                f"metric {metric.get('name', '?')!r} is missing "
                + ", ".join(repr(key) for key in missing)
            )
    if problems:
        return problems
    passed = sum(1 for metric in metrics if metric["ok"])
    if summary["passed"] != passed or summary["total"] != len(metrics):
        problems.append(
            f"report arithmetic is inconsistent: says {summary['passed']}/"
            f"{summary['total']} but the metrics list holds {passed}/"
            f"{len(metrics)} passes"
        )
    flagged = sorted(metric["name"] for metric in metrics if not metric["ok"])
    if expect_unrealistic:
        if summary["realistic"] or not flagged:
            problems.append(
                "the world was scored realistic, but this gate expects the "
                "negative control to be flagged — the scorer cannot tell a "
                "skewed world from the paper's Internet"
            )
    elif not summary["realistic"] or flagged:
        for metric in metrics:
            if not metric["ok"]:
                low, high = metric["band"]
                problems.append(
                    f"metric {metric['name']} = {metric['value']} fell "
                    f"outside its paper band [{low}, {high}] "
                    f"({metric['paper_ref']})"
                )
        if summary["realistic"] and flagged:
            problems.append(
                "report claims realistic=true despite out-of-band metrics"
            )
    return problems


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        description="Enforce the tracked perf-summary bars in CI."
    )
    parser.add_argument(
        "summary",
        type=Path,
        help="path to perf_columnar_summary.json (default mode) or "
        "perf_scaling_summary.json (with --expect-parallel-speedup)",
    )
    parser.add_argument(
        "--min-ingest-speedup",
        type=float,
        default=5.0,
        help="minimum cold-ingest speedup of columnar over JSONL (default: 5)",
    )
    parser.add_argument(
        "--expect-parallel-speedup",
        action="store_true",
        help="scaling mode: require every parallel jobs value to at least "
        "match the serial wall-clock (enforced only when the summary "
        "records >= 2 CPU cores; shard/serial parity is enforced "
        "unconditionally)",
    )
    parser.add_argument(
        "--speedup-tolerance",
        type=float,
        default=0.05,
        help="scaling mode: fractional wall-clock noise allowance before "
        "jobs=N counts as slower than serial (default: 0.05)",
    )
    parser.add_argument(
        "--expect-serve",
        action="store_true",
        help="serve mode: enforce the serve-load bars — zero query "
        "failures, served/batch parity, availability during ingest, and "
        "the delta-only ingest proof unconditionally; the latency and "
        "qps bars only when the summary records >= 2 CPU cores",
    )
    parser.add_argument(
        "--expect-signals",
        action="store_true",
        help="signals mode: enforce the evasion-suite bars unconditionally "
        "— parity in every cell, zero false confirmations against world "
        "ground truth under both configurations, the header-only baseline "
        "fooled by every adversarial scenario, and the multi-signal path "
        "out-confirming it there",
    )
    parser.add_argument(
        "--expect-realism",
        action="store_true",
        help="realism mode: the summary is a repro.realism-report/1 from "
        "tools/assess_realism.py; require every metric inside its "
        "paper-anchored band (the world scored realistic)",
    )
    parser.add_argument(
        "--expect-unrealistic",
        action="store_true",
        help="with --expect-realism: require the world to be *flagged* "
        "instead — at least one metric outside its band — proving the "
        "scorer discriminates (CI runs this against the skewed scenario)",
    )
    parser.add_argument(
        "--max-p99-ms",
        type=float,
        default=500.0,
        help="serve mode: maximum acceptable query latency p99 in "
        "milliseconds on multi-core hosts (default: 500)",
    )
    parser.add_argument(
        "--min-qps",
        type=float,
        default=50.0,
        help="serve mode: minimum acceptable aggregate throughput in "
        "queries per second on multi-core hosts (default: 50)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)

    try:
        summary = json.loads(args.summary.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"FAIL: perf summary not found: {args.summary}")
        return 1
    except json.JSONDecodeError as error:
        print(f"FAIL: perf summary is not valid JSON: {error}")
        return 1

    if args.expect_unrealistic and not args.expect_realism:
        print("FAIL: --expect-unrealistic only modifies --expect-realism")
        return 1

    if args.expect_realism:
        problems = check_realism_summary(
            summary, expect_unrealistic=args.expect_unrealistic
        )
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        meta = summary["scenario"]
        flagged = sorted(
            metric["name"] for metric in summary["metrics"] if not metric["ok"]
        )
        if args.expect_unrealistic:
            print(
                f"OK: scenario {meta['name']!r} was flagged unrealistic as "
                f"expected — {summary['passed']}/{summary['total']} metrics "
                f"in band, flagged: {', '.join(flagged)}"
            )
        else:
            print(
                f"OK: scenario {meta['name']!r} scored realistic — "
                f"{summary['passed']}/{summary['total']} metrics inside "
                f"their paper bands (seed={meta['seed']}, "
                f"scale={meta['scale']})"
            )
        return 0

    if args.expect_signals:
        problems = check_signals_summary(summary)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        scenarios = summary["scenarios"]
        adversarial = {
            label: cell for label, cell in scenarios.items() if cell.get("adversarial")
        }
        fooled = ", ".join(
            f"{label} {cell['baseline']['confirmed']}→{cell['multi']['confirmed']}"
            for label, cell in sorted(adversarial.items())
        )
        print(
            f"OK: {len(adversarial)} adversarial scenario(s) fooled the "
            f"header-only baseline and were recovered by "
            f"{'+'.join(summary['signals'])} under {summary['policy']} "
            f"({fooled}); zero false confirmations anywhere; parity holds "
            f"in {len(summary['parity'])} cells"
        )
        return 0

    if args.expect_serve:
        problems = check_serve_summary(summary, args.max_p99_ms, args.min_qps)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        ingest = summary["ingest"]
        verdict = (
            f"OK: {summary['queries_total']} queries, 0 failures; "
            f"delta pass re-analysed {ingest['delta_pass_ingested']} and "
            f"skipped {ingest['delta_pass_skipped']} unchanged; "
            f"{summary['queries_during_ingest']} queries answered during "
            "the ingest; parity holds in "
            f"{len(summary['parity'])} cells"
        )
        if summary["cpu_count"] < 2:
            verdict += (
                f"; latency/qps bars SKIPPED — summary records "
                f"{summary['cpu_count']} CPU core(s) "
                f"(observed p99 {summary['latency_p99_ms']}ms, "
                f"{summary['qps']} qps, not gated)"
            )
        else:
            verdict += (
                f"; p99 {summary['latency_p99_ms']}ms <= {args.max_p99_ms}ms, "
                f"{summary['qps']} qps >= {args.min_qps} on "
                f"{summary['cpu_count']} cores"
            )
        print(verdict)
        return 0

    if args.expect_parallel_speedup:
        problems = check_scaling_summary(summary, args.speedup_tolerance)
        if problems:
            for problem in problems:
                print(f"FAIL: {problem}")
            return 1
        cpu_count = summary["cpu_count"]
        if cpu_count < 2:
            print(
                f"OK: shard/serial parity holds ({len(summary['parity'])} "
                f"cells); speedup bar SKIPPED — summary records "
                f"{cpu_count} CPU core(s), parallel wall-clock is not "
                "measurable on this host"
            )
        else:
            print(
                f"OK: shard/serial parity holds ({len(summary['parity'])} "
                f"cells); every parallel jobs value matched or beat serial "
                f"on {cpu_count} cores — speedups: "
                + json.dumps(summary["speedups"], sort_keys=True)
            )
        return 0

    problems = check_summary(summary, args.min_ingest_speedup)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"OK: columnar cold ingest {summary['ingest_speedup']}x JSONL "
        f"(gate >={args.min_ingest_speedup}x); full run "
        f"{summary['run_speedup']}x; parity holds for "
        + ", ".join(sorted(summary["parity"]))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
