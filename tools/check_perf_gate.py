"""CI gate over the columnar-format perf summary.

``benchmarks/bench_pipeline_perf.py::test_columnar_vs_jsonl_cold_ingest``
publishes ``perf_columnar_summary.json`` — cold ingest and full-run
wall-clock for the same dataset in both corpus formats, plus a parity
matrix asserting the output is indifferent to the format.  This script
is the enforcement half: it fails the build when the columnar cold
ingest drops below the required multiple of the JSONL baseline, or when
any parity cell went false.

Usage::

    python tools/check_perf_gate.py benchmarks/output/perf_columnar_summary.json
    python tools/check_perf_gate.py summary.json --min-ingest-speedup 5

Exit status: 0 when every bar holds, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

__all__ = ["check_summary", "main"]

#: Keys the summary must carry for the gate to be meaningful.
REQUIRED_KEYS = (
    "jsonl_ingest_seconds",
    "columnar_ingest_seconds",
    "ingest_speedup",
    "run_speedup",
    "parity",
)


def check_summary(summary: dict, min_ingest_speedup: float) -> list[str]:
    """Every gate violation in ``summary``, as human-readable strings."""
    problems = [
        f"summary is missing required key {key!r}"
        for key in REQUIRED_KEYS
        if key not in summary
    ]
    if problems:
        return problems
    speedup = summary["ingest_speedup"]
    if not isinstance(speedup, (int, float)) or speedup < min_ingest_speedup:
        problems.append(
            f"columnar cold ingest is only {speedup}x the JSONL baseline "
            f"(gate: >={min_ingest_speedup}x) — "
            f"jsonl {summary['jsonl_ingest_seconds']}s vs "
            f"columnar {summary['columnar_ingest_seconds']}s"
        )
    broken = [label for label, ok in summary["parity"].items() if not ok]
    if broken:
        problems.append(
            "funnel/ingest parity between formats broke under: "
            + ", ".join(sorted(broken))
        )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Enforce the columnar-vs-JSONL ingest perf bar."
    )
    parser.add_argument(
        "summary", type=Path, help="path to perf_columnar_summary.json"
    )
    parser.add_argument(
        "--min-ingest-speedup",
        type=float,
        default=5.0,
        help="minimum cold-ingest speedup of columnar over JSONL (default: 5)",
    )
    args = parser.parse_args(argv)

    try:
        summary = json.loads(args.summary.read_text(encoding="utf-8"))
    except FileNotFoundError:
        print(f"FAIL: perf summary not found: {args.summary}")
        return 1
    except json.JSONDecodeError as error:
        print(f"FAIL: perf summary is not valid JSON: {error}")
        return 1

    problems = check_summary(summary, args.min_ingest_speedup)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}")
        return 1
    print(
        f"OK: columnar cold ingest {summary['ingest_speedup']}x JSONL "
        f"(gate >={args.min_ingest_speedup}x); full run "
        f"{summary['run_speedup']}x; parity holds for "
        + ", ".join(sorted(summary["parity"]))
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
