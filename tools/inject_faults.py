#!/usr/bin/env python3
"""Deterministic fault injection for exported corpus datasets.

Corrupts one corpus snapshot of a dataset directory (produced by
``python -m repro export``) in controlled, seeded ways, so tests, benches
and CI can assert the ingestion robustness layer degrades gracefully:
``--on-error=strict`` must fail fast at the first injected fault,
``--on-error=lenient`` must quarantine *exactly* the injected faults
(per error class) and still confirm the off-nets derivable from the
surviving records.

Usage::

    python tools/inject_faults.py inject --dir out/ --truncate 2 \
        --garble 1 --drop-field 1 --string-ip 2 --bad-ip 1 \
        --missing-port 1 --bad-chain-ref 1 --break-cert 1 --conflict-chain 1
    python tools/inject_faults.py verify --dir out/ --mode lenient

``inject`` rewrites the corpus file in place, writes a ``faults.json``
manifest of what was injected (including the per-error-class counts a
lenient run must report) and stamps a ``faults`` key into the dataset's
``manifest.json`` so :meth:`repro.datasets.FileDataset.fingerprint`
changes — a warm stage cache can never serve pre-corruption artifacts
for the corrupted data.

``verify`` re-reads the corrupted corpus under ``--mode`` and exits
nonzero unless the quarantine/repair counts match ``faults.json``
exactly — the CI ingest gate.

Fault kinds and the error class each must be accounted under
(:data:`repro.robustness.ERROR_CLASSES`):

==================  ====================  =========================
kind                target lines          error class
==================  ====================  =========================
``truncate``        tls/http rows         ``malformed_json``
``garble``          tls/http rows         ``malformed_json``
``drop-field``      tls rows (drop ip)    ``schema_violation``
``string-ip``       tls rows              ``string_ip`` (repairable)
``bad-ip``          tls rows              ``out_of_range_ip``
``missing-port``    http rows             ``missing_port`` (repairable)
``bad-chain-ref``   tls rows              ``unknown_chain_ref``
``break-cert``      chain records         ``undecodable_chain`` +
                                          ``unknown_chain_ref`` for
                                          every tls row referencing
                                          the broken chain (cascade)
``conflict-chain``  appended chain copy   ``conflicting_chain``
                                          (repairable: keep first)
==================  ====================  =========================

The meta header (line 1) is never touched: without it there is no
snapshot to attach survivors to, so corrupting it is fatal under every
policy — graceful degradation is only defined past the header.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # runnable without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.robustness import REPAIRABLE_CLASSES, IngestPolicy  # noqa: E402
from repro.scan.corpus import stream_snapshot  # noqa: E402

__all__ = ["FAULT_KINDS", "inject_faults", "expected_counts", "main"]

#: Fault kind -> the error class its direct injections land under.
FAULT_KINDS = {
    "truncate": "malformed_json",
    "garble": "malformed_json",
    "drop_field": "schema_violation",
    "string_ip": "string_ip",
    "bad_ip": "out_of_range_ip",
    "missing_port": "missing_port",
    "bad_chain_ref": "unknown_chain_ref",
    "break_cert": "undecodable_chain",
    "conflict_chain": "conflicting_chain",
}

#: faults.json schema marker.
FAULTS_SCHEMA = "repro.fault-injection/1"

#: A fingerprint no exported chain can have (hex digests only).
_UNKNOWN_FP = "injected-unknown-chain-reference"


def _ip_to_quad(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _truncate_line(line: str) -> str:
    """Cut a JSON line so it no longer parses (deterministically)."""
    body = line.rstrip("\n")
    cut = body[: max(1, len(body) // 2)]
    while cut:
        try:
            json.loads(cut)
        except json.JSONDecodeError:
            return cut
        cut = cut[:-1]
    return "{"  # a lone brace never parses


def _pick(rng: random.Random, pool: list[int], reserved: set[int], count: int,
          kind: str) -> list[int]:
    """``count`` distinct unreserved indices from ``pool`` (then reserved)."""
    available = [index for index in pool if index not in reserved]
    if len(available) < count:
        raise SystemExit(
            f"not enough eligible lines for --{kind.replace('_', '-')}: "
            f"wanted {count}, only {len(available)} available"
        )
    chosen = sorted(rng.sample(available, count))
    reserved.update(chosen)
    return chosen


def inject_faults(
    dataset_dir: str | Path,
    corpus: str | None = None,
    snapshot: str | None = None,
    seed: int = 7,
    counts: dict[str, int] | None = None,
) -> dict:
    """Corrupt one corpus snapshot in place; returns the faults manifest.

    ``counts`` maps fault kinds (keys of :data:`FAULT_KINDS`) to how many
    records to corrupt.  Selections are seeded and disjoint: no line
    receives two faults, and lines swept up in a ``break_cert`` cascade
    (tls rows referencing a broken chain) are excluded from every other
    pick, so the expected per-class counts are exact, not approximate.
    """
    dataset_dir = Path(dataset_dir)
    manifest_path = dataset_dir / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    corpus = corpus or next(iter(manifest["corpora"]))
    snapshot = snapshot or sorted(manifest["corpora"][corpus])[-1]
    corpus_path = dataset_dir / "corpora" / corpus / f"{snapshot}.jsonl"
    counts = {kind: int(counts.get(kind, 0)) for kind in FAULT_KINDS} if counts else {}
    unknown = set(counts) - set(FAULT_KINDS)
    if unknown:
        raise ValueError(f"unknown fault kinds: {sorted(unknown)}")

    lines = corpus_path.read_text(encoding="utf-8").splitlines()
    rng = random.Random(seed)

    # Index the file: line numbers are 0-based here, 1-based in faults.json.
    chain_lines: dict[str, int] = {}
    chain_refs: dict[str, list[int]] = {}
    tls_lines: list[int] = []
    http_lines: list[int] = []
    for index, line in enumerate(lines[1:], start=1):
        record = json.loads(line)
        kind = record["type"]
        if kind == "chain":
            chain_lines[record["id"]] = index
            chain_refs.setdefault(record["id"], [])
        elif kind == "tls":
            tls_lines.append(index)
            chain_refs.setdefault(record["chain"], []).append(index)
        elif kind == "http":
            http_lines.append(index)

    reserved: set[int] = set()
    picks: dict[str, list[int]] = {}

    # 1. break_cert first: it reserves the broken chain line AND every tls
    #    row referencing it (the cascade), so later picks cannot overlap
    #    and every cascade row is accounted exactly once.
    cascade_refs = 0
    if counts.get("break_cert"):
        fingerprints = sorted(chain_lines)
        rng.shuffle(fingerprints)
        broken: list[int] = []
        for fingerprint in fingerprints:
            if len(broken) == counts["break_cert"]:
                break
            line_index = chain_lines[fingerprint]
            refs = chain_refs.get(fingerprint, [])
            if line_index in reserved or any(r in reserved for r in refs):
                continue
            broken.append(line_index)
            reserved.add(line_index)
            reserved.update(refs)
            cascade_refs += len(refs)
        if len(broken) < counts["break_cert"]:
            raise SystemExit(
                f"not enough unreserved chains for --break-cert: wanted "
                f"{counts['break_cert']}, found {len(broken)}"
            )
        picks["break_cert"] = sorted(broken)

    # 2. conflict_chain: the original chain line must survive untouched
    #    (the appended copy conflicts with it), so reserve it too.
    if counts.get("conflict_chain"):
        originals = _pick(
            rng, sorted(chain_lines.values()), reserved,
            counts["conflict_chain"], "conflict_chain",
        )
        picks["conflict_chain"] = originals

    # 3. Row-level faults on unreserved tls/http lines.
    for kind, pool in (
        ("drop_field", tls_lines),
        ("string_ip", tls_lines),
        ("bad_ip", tls_lines),
        ("bad_chain_ref", tls_lines),
        ("missing_port", http_lines),
        ("truncate", tls_lines + http_lines),
        ("garble", tls_lines + http_lines),
    ):
        if counts.get(kind):
            picks[kind] = _pick(rng, pool, reserved, counts[kind], kind)

    # Apply, in line order where possible (mutations are independent).
    appended: list[str] = []
    for kind, indices in picks.items():
        for index in indices:
            if kind == "conflict_chain":
                # The original line stays intact; the *appended* modified
                # copy is the conflicting record.
                record = json.loads(lines[index])
                record["certs"][0]["serial"] = "injected-conflicting-serial"
                appended.append(json.dumps(record))
                continue
            if kind == "truncate":
                lines[index] = _truncate_line(lines[index])
            elif kind == "garble":
                lines[index] = "~" + lines[index]
            elif kind == "drop_field":
                record = json.loads(lines[index])
                del record["ip"]
                lines[index] = json.dumps(record)
            elif kind == "string_ip":
                record = json.loads(lines[index])
                record["ip"] = _ip_to_quad(record["ip"])
                lines[index] = json.dumps(record)
            elif kind == "bad_ip":
                record = json.loads(lines[index])
                record["ip"] = 2**32 + record["ip"]
                lines[index] = json.dumps(record)
            elif kind == "missing_port":
                record = json.loads(lines[index])
                del record["port"]
                lines[index] = json.dumps(record)
            elif kind == "bad_chain_ref":
                record = json.loads(lines[index])
                record["chain"] = _UNKNOWN_FP
                lines[index] = json.dumps(record)
            elif kind == "break_cert":
                record = json.loads(lines[index])
                del record["certs"][0]["fingerprint"]
                lines[index] = json.dumps(record)
    if appended:
        # Report the appended copies' positions, not the originals'.
        picks["conflict_chain"] = list(
            range(len(lines), len(lines) + len(appended))
        )
    lines.extend(appended)
    corpus_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    applied = {kind: len(indices) for kind, indices in picks.items()}
    expected: dict[str, int] = {}
    for kind, count in applied.items():
        error_class = FAULT_KINDS[kind]
        expected[error_class] = expected.get(error_class, 0) + count
    if cascade_refs:
        expected["unknown_chain_ref"] = (
            expected.get("unknown_chain_ref", 0) + cascade_refs
        )

    faults = {
        "schema": FAULTS_SCHEMA,
        "corpus": corpus,
        "snapshot": snapshot,
        "seed": seed,
        "applied": applied,
        "cascade_unknown_chain_refs": cascade_refs,
        "expected_classes": {k: expected[k] for k in sorted(expected)},
        "lines": {
            kind: [index + 1 for index in indices]
            for kind, indices in sorted(picks.items())
        },
    }
    (dataset_dir / "faults.json").write_text(
        json.dumps(faults, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # Stamp the dataset manifest: FileDataset.fingerprint() hashes it, so
    # stage-cache keys for the corrupted data differ from the clean run's.
    manifest["faults"] = {
        "corpus": corpus,
        "snapshot": snapshot,
        "seed": seed,
        "applied": applied,
    }
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return faults


def expected_counts(faults: dict, mode: str) -> tuple[dict[str, int], dict[str, int]]:
    """The exact (quarantined_by_class, repaired_by_class) a run under
    ``mode`` must report for an injected dataset.

    Under ``lenient`` everything is quarantined; under ``repair`` the
    repairable classes move to the repaired side (and a repaired conflict
    keeps the first chain interned, so its cascade stays empty either
    way — cascades are only ever booked for *broken* chains).
    """
    classes = dict(faults["expected_classes"])
    if mode == "lenient":
        return classes, {}
    if mode != "repair":
        raise ValueError(f"expected_counts needs lenient|repair, got {mode!r}")
    quarantined = {
        k: v for k, v in classes.items() if k not in REPAIRABLE_CLASSES
    }
    repaired = {k: v for k, v in classes.items() if k in REPAIRABLE_CLASSES}
    return quarantined, repaired


def _cmd_inject(args: argparse.Namespace) -> int:
    counts = {
        kind: getattr(args, kind)
        for kind in FAULT_KINDS
        if getattr(args, kind)
    }
    if not counts:
        print("nothing to inject: pass at least one --<fault> N flag")
        return 2
    faults = inject_faults(
        args.dir, corpus=args.corpus, snapshot=args.snapshot,
        seed=args.seed, counts=counts,
    )
    total = sum(faults["applied"].values())
    print(
        f"injected {total} faults into {faults['corpus']}/{faults['snapshot']} "
        f"(+{faults['cascade_unknown_chain_refs']} cascaded chain refs); "
        f"expected classes: {faults['expected_classes']}"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    dataset_dir = Path(args.dir)
    faults = json.loads((dataset_dir / "faults.json").read_text(encoding="utf-8"))
    corpus_path = (
        dataset_dir / "corpora" / faults["corpus"] / f"{faults['snapshot']}.jsonl"
    )
    scan = stream_snapshot(corpus_path, IngestPolicy(mode=args.mode))
    report = scan.ingest
    want_quarantined, want_repaired = expected_counts(faults, args.mode)
    problems = []
    if report.quarantined_by_class != want_quarantined:
        problems.append(
            f"quarantined_by_class {report.quarantined_by_class} "
            f"!= expected {want_quarantined}"
        )
    if report.repaired_by_class != want_repaired:
        problems.append(
            f"repaired_by_class {report.repaired_by_class} "
            f"!= expected {want_repaired}"
        )
    if problems:
        print(f"FAIL ({args.mode}): " + "; ".join(problems))
        return 1
    print(
        f"OK ({args.mode}): {report.quarantined} quarantined, "
        f"{report.repaired} repaired, {report.accepted}/{report.seen} accepted "
        "— exactly the injected faults"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="inject_faults",
        description="Deterministically corrupt an exported corpus snapshot "
        "and verify the ingestion layer accounts for every fault",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inject = sub.add_parser("inject", help="corrupt a corpus snapshot in place")
    inject.add_argument("--dir", required=True, help="dataset directory")
    inject.add_argument("--corpus", default=None, help="corpus name (default: first)")
    inject.add_argument("--snapshot", default=None, help="YYYY-MM (default: last)")
    inject.add_argument("--seed", type=int, default=7, help="selection seed")
    for kind, error_class in FAULT_KINDS.items():
        inject.add_argument(
            f"--{kind.replace('_', '-')}",
            dest=kind,
            type=int,
            default=0,
            metavar="N",
            help=f"inject N {kind} faults (error class: {error_class})",
        )

    verify = sub.add_parser(
        "verify", help="re-read the corrupted corpus and check the counts"
    )
    verify.add_argument("--dir", required=True, help="dataset directory")
    verify.add_argument(
        "--mode", default="lenient", choices=("lenient", "repair"),
        help="ingestion policy to verify under (default lenient)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return {"inject": _cmd_inject, "verify": _cmd_verify}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
