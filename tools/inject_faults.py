#!/usr/bin/env python3
"""Deterministic fault injection for exported corpus datasets.

Corrupts one corpus snapshot of a dataset directory (produced by
``python -m repro export``) in controlled, seeded ways, so tests, benches
and CI can assert the ingestion robustness layer degrades gracefully:
``--on-error=strict`` must fail fast at the first injected fault,
``--on-error=lenient`` must quarantine *exactly* the injected faults
(per error class) and still confirm the off-nets derivable from the
surviving records.

Usage::

    python tools/inject_faults.py inject --dir out/ --truncate 2 \
        --garble 1 --drop-field 1 --string-ip 2 --bad-ip 1 \
        --missing-port 1 --bad-chain-ref 1 --break-cert 1 --conflict-chain 1
    python tools/inject_faults.py inject --dir outc/ --flip-block 2 \
        --truncate-block 1 --dangling-ref 3
    python tools/inject_faults.py verify --dir out/ --mode lenient

``inject`` rewrites the corpus file in place, writes a ``faults.json``
manifest of what was injected (including the per-error-class counts a
lenient run must report) and stamps a ``faults`` key into the dataset's
``manifest.json`` so :meth:`repro.datasets.FileDataset.fingerprint`
changes — a warm stage cache can never serve pre-corruption artifacts
for the corrupted data.

``verify`` re-reads the corrupted corpus under ``--mode`` (autodetecting
its format) and exits nonzero unless the quarantine/repair counts match
``faults.json`` exactly — the CI ingest gate.

The corpus file's format decides which fault kinds apply: the JSONL
(line-level) kinds target a ``.jsonl`` corpus, the columnar (block-level)
kinds target a ``.rcc`` corpus, and mixing them is an error — a
truncated JSON line has no meaning inside a checksummed binary block and
vice versa.

JSONL fault kinds and the error class each must be accounted under
(:data:`repro.robustness.ERROR_CLASSES`):

==================  ====================  =========================
kind                target lines          error class
==================  ====================  =========================
``truncate``        tls/http rows         ``malformed_json``
``garble``          tls/http rows         ``malformed_json``
``drop-field``      tls rows (drop ip)    ``schema_violation``
``string-ip``       tls rows              ``string_ip`` (repairable)
``bad-ip``          tls rows              ``out_of_range_ip``
``missing-port``    http rows             ``missing_port`` (repairable)
``bad-chain-ref``   tls rows              ``unknown_chain_ref``
``break-cert``      chain records         ``undecodable_chain`` +
                                          ``unknown_chain_ref`` for
                                          every tls row referencing
                                          the broken chain (cascade)
``conflict-chain``  appended chain copy   ``conflicting_chain``
                                          (repairable: keep first)
==================  ====================  =========================

Columnar fault kinds (see :mod:`repro.datasets.columnar` for the block
semantics each exercises):

==================  =====================  ========================
kind                target                 error class
==================  =====================  ========================
``truncate-block``  the file's last block  ``corrupt_block``
                    (payload cut short)
``flip-block``      a non-meta block's     ``corrupt_block``
                    first payload byte     (one per flipped block)
                    (checksum mismatch)
``dangling-ref``    ``tls_chain`` entries  ``dangling_intern_ref``
                    rewritten out of       (one per rewritten row;
                    range, CRC re-signed   block stays valid)
==================  =====================  ========================

Selections stay exact: ``--truncate-block`` allows at most 1 (a file has
one tail); ``--flip-block`` never picks ``meta`` (fatal under every
policy — the analogue of the JSONL meta line being off-limits), never
the last block when a truncation is requested, and never a chain- or
TLS-section block when ``--dangling-ref`` is requested (dropping those
sections would silently swallow the dangling rows it promised).

The JSONL meta header (line 1) / the columnar ``meta`` block are never
touched: without them there is no snapshot to attach survivors to, so
corrupting them is fatal under every policy — graceful degradation is
only defined past the header.
"""

from __future__ import annotations

import argparse
import json
import random
import struct
import sys
import zlib
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if str(REPO_ROOT / "src") not in sys.path:  # runnable without PYTHONPATH
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.datasets.columnar import (  # noqa: E402
    _BLOCK_HEADER,
    _PREAMBLE,
    CHAIN_SECTION_BLOCKS,
    TLS_BLOCKS,
)
from repro.datasets.formats import corpus_candidates, read_corpus  # noqa: E402
from repro.robustness import REPAIRABLE_CLASSES, IngestPolicy  # noqa: E402

__all__ = [
    "COLUMNAR_FAULT_KINDS",
    "FAULT_KINDS",
    "inject_faults",
    "expected_counts",
    "main",
]

#: JSONL fault kind -> the error class its direct injections land under.
FAULT_KINDS = {
    "truncate": "malformed_json",
    "garble": "malformed_json",
    "drop_field": "schema_violation",
    "string_ip": "string_ip",
    "bad_ip": "out_of_range_ip",
    "missing_port": "missing_port",
    "bad_chain_ref": "unknown_chain_ref",
    "break_cert": "undecodable_chain",
    "conflict_chain": "conflicting_chain",
}

#: Columnar (block-level) fault kind -> error class.
COLUMNAR_FAULT_KINDS = {
    "truncate_block": "corrupt_block",
    "flip_block": "corrupt_block",
    "dangling_ref": "dangling_intern_ref",
}

#: faults.json schema marker.
FAULTS_SCHEMA = "repro.fault-injection/1"

#: A fingerprint no exported chain can have (hex digests only).
_UNKNOWN_FP = "injected-unknown-chain-reference"


def _ip_to_quad(value: int) -> str:
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


def _truncate_line(line: str) -> str:
    """Cut a JSON line so it no longer parses (deterministically)."""
    body = line.rstrip("\n")
    cut = body[: max(1, len(body) // 2)]
    while cut:
        try:
            json.loads(cut)
        except json.JSONDecodeError:
            return cut
        cut = cut[:-1]
    return "{"  # a lone brace never parses


def _pick(rng: random.Random, pool: list[int], reserved: set[int], count: int,
          kind: str) -> list[int]:
    """``count`` distinct unreserved indices from ``pool`` (then reserved)."""
    available = [index for index in pool if index not in reserved]
    if len(available) < count:
        raise SystemExit(
            f"not enough eligible lines for --{kind.replace('_', '-')}: "
            f"wanted {count}, only {len(available)} available"
        )
    chosen = sorted(rng.sample(available, count))
    reserved.update(chosen)
    return chosen


def inject_faults(
    dataset_dir: str | Path,
    corpus: str | None = None,
    snapshot: str | None = None,
    seed: int = 7,
    counts: dict[str, int] | None = None,
) -> dict:
    """Corrupt one corpus snapshot in place; returns the faults manifest.

    ``counts`` maps fault kinds (keys of :data:`FAULT_KINDS` or
    :data:`COLUMNAR_FAULT_KINDS`) to how many records/blocks to corrupt.
    The corpus file's own format (resolved the way ingestion resolves
    it, via :func:`repro.datasets.formats.corpus_candidates`) decides
    which family applies; mixing families is an error.  Selections are
    seeded and disjoint: no line/block receives two faults, and lines
    swept up in a ``break_cert`` cascade (tls rows referencing a broken
    chain) are excluded from every other pick, so the expected per-class
    counts are exact, not approximate.
    """
    dataset_dir = Path(dataset_dir)
    manifest_path = dataset_dir / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    corpus = corpus or next(iter(manifest["corpora"]))
    snapshot = snapshot or sorted(manifest["corpora"][corpus])[-1]
    corpus_dir = dataset_dir / "corpora" / corpus
    corpus_path = next(
        (p for p in corpus_candidates(corpus_dir, snapshot) if p.exists()), None
    )
    if corpus_path is None:
        raise SystemExit(f"no corpus file for {corpus}/{snapshot} under {corpus_dir}")
    all_kinds = {**FAULT_KINDS, **COLUMNAR_FAULT_KINDS}
    counts = {k: int(v) for k, v in (counts or {}).items() if int(v)}
    unknown = set(counts) - set(all_kinds)
    if unknown:
        raise ValueError(f"unknown fault kinds: {sorted(unknown)}")
    columnar = corpus_path.suffix == ".rcc"
    family = COLUMNAR_FAULT_KINDS if columnar else FAULT_KINDS
    wrong = sorted(set(counts) - set(family))
    if wrong:
        raise SystemExit(
            f"fault kinds {wrong} do not apply to a {corpus_path.suffix} "
            "corpus: line-level kinds need JSONL, block-level kinds columnar"
        )

    rng = random.Random(seed)
    if columnar:
        applied, cascade_refs, positions_key, positions = _inject_columnar(
            corpus_path, rng, counts
        )
    else:
        applied, cascade_refs, positions_key, positions = _inject_jsonl(
            corpus_path, rng, counts
        )

    expected: dict[str, int] = {}
    for kind, count in applied.items():
        error_class = all_kinds[kind]
        expected[error_class] = expected.get(error_class, 0) + count
    if cascade_refs:
        expected["unknown_chain_ref"] = (
            expected.get("unknown_chain_ref", 0) + cascade_refs
        )

    faults = {
        "schema": FAULTS_SCHEMA,
        "corpus": corpus,
        "snapshot": snapshot,
        "format": "columnar" if columnar else "jsonl",
        "seed": seed,
        "applied": applied,
        "cascade_unknown_chain_refs": cascade_refs,
        "expected_classes": {k: expected[k] for k in sorted(expected)},
        positions_key: positions,
    }
    (dataset_dir / "faults.json").write_text(
        json.dumps(faults, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    # Stamp the dataset manifest: FileDataset.fingerprint() hashes it, so
    # stage-cache keys for the corrupted data differ from the clean run's.
    manifest["faults"] = {
        "corpus": corpus,
        "snapshot": snapshot,
        "seed": seed,
        "applied": applied,
    }
    manifest_path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return faults


def _inject_columnar(
    corpus_path: Path, rng: random.Random, counts: dict[str, int]
) -> tuple[dict[str, int], int, str, dict]:
    """Apply the block-level fault kinds to a ``.rcc`` corpus in place.

    Returns ``(applied, cascade_refs, positions_key, positions)``;
    positions name the damaged blocks (1-based tls rows for
    ``dangling_ref``) so ``faults.json`` stays auditable.
    """
    data = bytearray(corpus_path.read_bytes())
    if len(data) < _PREAMBLE.size:
        raise SystemExit(f"{corpus_path} is too short to be a columnar corpus")
    _, _, block_count = _PREAMBLE.unpack_from(data, 0)
    blocks: list[tuple[str, int, int, int]] = []
    offset = _PREAMBLE.size
    for _ in range(block_count):
        raw_name, _, length, _ = _BLOCK_HEADER.unpack_from(data, offset)
        name = raw_name.rstrip(b"\x00").decode("ascii")
        blocks.append((name, offset, offset + _BLOCK_HEADER.size, length))
        offset += _BLOCK_HEADER.size + length
    by_name = {block[0]: block for block in blocks}
    #: crc32 lives after name (16) + kind (1) + length (8) in the header.
    crc_offset = 16 + 1 + 8

    truncate = counts.get("truncate_block", 0)
    if truncate > 1:
        raise SystemExit("--truncate-block allows at most 1: a file has one tail")
    dangling = counts.get("dangling_ref", 0)
    flips = counts.get("flip_block", 0)
    applied: dict[str, int] = {}
    positions: dict[str, list] = {}

    # 1. dangling_ref: rewrite seeded tls_chain entries far out of range,
    #    then re-sign the block so it still frames clean — the fault must
    #    surface at reference validation, not as a checksum error.
    if dangling:
        name, header_offset, payload_offset, length = by_name["tls_chain"]
        rows = length // 4
        if rows < dangling:
            raise SystemExit(
                f"not enough tls rows for --dangling-ref: "
                f"wanted {dangling}, file has {rows}"
            )
        chosen = sorted(rng.sample(range(rows), dangling))
        for row in chosen:
            struct.pack_into("<I", data, payload_offset + 4 * row, 0xFFFFFFF0)
        payload = bytes(data[payload_offset : payload_offset + length])
        struct.pack_into(
            "<I", data, header_offset + crc_offset, zlib.crc32(payload)
        )
        applied["dangling_ref"] = dangling
        positions["dangling_ref"] = [row + 1 for row in chosen]

    # 2. flip_block: XOR the first payload byte of each picked block (a
    #    checksum mismatch at framing).  Never meta (fatal everywhere),
    #    never the tail when a truncation will eat it, never a chain- or
    #    TLS-section block when dangling rows were promised above.
    if flips:
        protected = {"meta"}
        if dangling:
            protected.update(CHAIN_SECTION_BLOCKS)
            protected.update(TLS_BLOCKS)
        if truncate:
            protected.add(blocks[-1][0])
        eligible = [
            block for block in blocks if block[0] not in protected and block[3]
        ]
        if len(eligible) < flips:
            raise SystemExit(
                f"not enough eligible blocks for --flip-block: "
                f"wanted {flips}, only {len(eligible)} available"
            )
        for name, _, payload_offset, _ in rng.sample(eligible, flips):
            data[payload_offset] ^= 0xFF
            positions.setdefault("flip_block", []).append(name)
        positions["flip_block"].sort()
        applied["flip_block"] = flips

    # 3. truncate_block: cut the last block's payload short (or its
    #    header, if the payload is already empty) — framing stops there.
    if truncate:
        name, header_offset, payload_offset, length = blocks[-1]
        if length:
            del data[payload_offset + length // 2 :]
        else:
            del data[header_offset + _BLOCK_HEADER.size // 2 :]
        applied["truncate_block"] = 1
        positions["truncate_block"] = [name]

    corpus_path.write_bytes(bytes(data))
    return applied, 0, "blocks", positions


def _inject_jsonl(
    corpus_path: Path, rng: random.Random, counts: dict[str, int]
) -> tuple[dict[str, int], int, str, dict]:
    """Apply the line-level fault kinds to a ``.jsonl`` corpus in place."""
    lines = corpus_path.read_text(encoding="utf-8").splitlines()

    # Index the file: line numbers are 0-based here, 1-based in faults.json.
    chain_lines: dict[str, int] = {}
    chain_refs: dict[str, list[int]] = {}
    tls_lines: list[int] = []
    http_lines: list[int] = []
    for index, line in enumerate(lines[1:], start=1):
        record = json.loads(line)
        kind = record["type"]
        if kind == "chain":
            chain_lines[record["id"]] = index
            chain_refs.setdefault(record["id"], [])
        elif kind == "tls":
            tls_lines.append(index)
            chain_refs.setdefault(record["chain"], []).append(index)
        elif kind == "http":
            http_lines.append(index)

    reserved: set[int] = set()
    picks: dict[str, list[int]] = {}

    # 1. break_cert first: it reserves the broken chain line AND every tls
    #    row referencing it (the cascade), so later picks cannot overlap
    #    and every cascade row is accounted exactly once.
    cascade_refs = 0
    if counts.get("break_cert"):
        fingerprints = sorted(chain_lines)
        rng.shuffle(fingerprints)
        broken: list[int] = []
        for fingerprint in fingerprints:
            if len(broken) == counts["break_cert"]:
                break
            line_index = chain_lines[fingerprint]
            refs = chain_refs.get(fingerprint, [])
            if line_index in reserved or any(r in reserved for r in refs):
                continue
            broken.append(line_index)
            reserved.add(line_index)
            reserved.update(refs)
            cascade_refs += len(refs)
        if len(broken) < counts["break_cert"]:
            raise SystemExit(
                f"not enough unreserved chains for --break-cert: wanted "
                f"{counts['break_cert']}, found {len(broken)}"
            )
        picks["break_cert"] = sorted(broken)

    # 2. conflict_chain: the original chain line must survive untouched
    #    (the appended copy conflicts with it), so reserve it too.
    if counts.get("conflict_chain"):
        originals = _pick(
            rng, sorted(chain_lines.values()), reserved,
            counts["conflict_chain"], "conflict_chain",
        )
        picks["conflict_chain"] = originals

    # 3. Row-level faults on unreserved tls/http lines.
    for kind, pool in (
        ("drop_field", tls_lines),
        ("string_ip", tls_lines),
        ("bad_ip", tls_lines),
        ("bad_chain_ref", tls_lines),
        ("missing_port", http_lines),
        ("truncate", tls_lines + http_lines),
        ("garble", tls_lines + http_lines),
    ):
        if counts.get(kind):
            picks[kind] = _pick(rng, pool, reserved, counts[kind], kind)

    # Apply, in line order where possible (mutations are independent).
    appended: list[str] = []
    for kind, indices in picks.items():
        for index in indices:
            if kind == "conflict_chain":
                # The original line stays intact; the *appended* modified
                # copy is the conflicting record.
                record = json.loads(lines[index])
                record["certs"][0]["serial"] = "injected-conflicting-serial"
                appended.append(json.dumps(record))
                continue
            if kind == "truncate":
                lines[index] = _truncate_line(lines[index])
            elif kind == "garble":
                lines[index] = "~" + lines[index]
            elif kind == "drop_field":
                record = json.loads(lines[index])
                del record["ip"]
                lines[index] = json.dumps(record)
            elif kind == "string_ip":
                record = json.loads(lines[index])
                record["ip"] = _ip_to_quad(record["ip"])
                lines[index] = json.dumps(record)
            elif kind == "bad_ip":
                record = json.loads(lines[index])
                record["ip"] = 2**32 + record["ip"]
                lines[index] = json.dumps(record)
            elif kind == "missing_port":
                record = json.loads(lines[index])
                del record["port"]
                lines[index] = json.dumps(record)
            elif kind == "bad_chain_ref":
                record = json.loads(lines[index])
                record["chain"] = _UNKNOWN_FP
                lines[index] = json.dumps(record)
            elif kind == "break_cert":
                record = json.loads(lines[index])
                del record["certs"][0]["fingerprint"]
                lines[index] = json.dumps(record)
    if appended:
        # Report the appended copies' positions, not the originals'.
        picks["conflict_chain"] = list(
            range(len(lines), len(lines) + len(appended))
        )
    lines.extend(appended)
    corpus_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    applied = {kind: len(indices) for kind, indices in picks.items()}
    positions = {
        kind: [index + 1 for index in indices]
        for kind, indices in sorted(picks.items())
    }
    return applied, cascade_refs, "lines", positions


def expected_counts(faults: dict, mode: str) -> tuple[dict[str, int], dict[str, int]]:
    """The exact (quarantined_by_class, repaired_by_class) a run under
    ``mode`` must report for an injected dataset.

    Under ``lenient`` everything is quarantined; under ``repair`` the
    repairable classes move to the repaired side (and a repaired conflict
    keeps the first chain interned, so its cascade stays empty either
    way — cascades are only ever booked for *broken* chains).
    """
    classes = dict(faults["expected_classes"])
    if mode == "lenient":
        return classes, {}
    if mode != "repair":
        raise ValueError(f"expected_counts needs lenient|repair, got {mode!r}")
    quarantined = {
        k: v for k, v in classes.items() if k not in REPAIRABLE_CLASSES
    }
    repaired = {k: v for k, v in classes.items() if k in REPAIRABLE_CLASSES}
    return quarantined, repaired


def _cmd_inject(args: argparse.Namespace) -> int:
    counts = {
        kind: getattr(args, kind)
        for kind in {**FAULT_KINDS, **COLUMNAR_FAULT_KINDS}
        if getattr(args, kind)
    }
    if not counts:
        print("nothing to inject: pass at least one --<fault> N flag")
        return 2
    faults = inject_faults(
        args.dir, corpus=args.corpus, snapshot=args.snapshot,
        seed=args.seed, counts=counts,
    )
    total = sum(faults["applied"].values())
    print(
        f"injected {total} faults into {faults['corpus']}/{faults['snapshot']} "
        f"(+{faults['cascade_unknown_chain_refs']} cascaded chain refs); "
        f"expected classes: {faults['expected_classes']}"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    dataset_dir = Path(args.dir)
    faults = json.loads((dataset_dir / "faults.json").read_text(encoding="utf-8"))
    corpus_dir = dataset_dir / "corpora" / faults["corpus"]
    corpus_path = next(
        (p for p in corpus_candidates(corpus_dir, faults["snapshot"]) if p.exists()),
        None,
    )
    if corpus_path is None:
        print(f"FAIL: no corpus file for {faults['corpus']}/{faults['snapshot']}")
        return 1
    scan = read_corpus(corpus_path, IngestPolicy(mode=args.mode))
    report = scan.ingest
    want_quarantined, want_repaired = expected_counts(faults, args.mode)
    problems = []
    if report.quarantined_by_class != want_quarantined:
        problems.append(
            f"quarantined_by_class {report.quarantined_by_class} "
            f"!= expected {want_quarantined}"
        )
    if report.repaired_by_class != want_repaired:
        problems.append(
            f"repaired_by_class {report.repaired_by_class} "
            f"!= expected {want_repaired}"
        )
    if problems:
        print(f"FAIL ({args.mode}): " + "; ".join(problems))
        return 1
    print(
        f"OK ({args.mode}): {report.quarantined} quarantined, "
        f"{report.repaired} repaired, {report.accepted}/{report.seen} accepted "
        "— exactly the injected faults"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="inject_faults",
        description="Deterministically corrupt an exported corpus snapshot "
        "and verify the ingestion layer accounts for every fault",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    inject = sub.add_parser("inject", help="corrupt a corpus snapshot in place")
    inject.add_argument("--dir", required=True, help="dataset directory")
    inject.add_argument("--corpus", default=None, help="corpus name (default: first)")
    inject.add_argument("--snapshot", default=None, help="YYYY-MM (default: last)")
    inject.add_argument("--seed", type=int, default=7, help="selection seed")
    for kind, error_class in FAULT_KINDS.items():
        inject.add_argument(
            f"--{kind.replace('_', '-')}",
            dest=kind,
            type=int,
            default=0,
            metavar="N",
            help=f"inject N {kind} faults (error class: {error_class}; "
            "JSONL corpora only)",
        )
    for kind, error_class in COLUMNAR_FAULT_KINDS.items():
        inject.add_argument(
            f"--{kind.replace('_', '-')}",
            dest=kind,
            type=int,
            default=0,
            metavar="N",
            help=f"inject N {kind} faults (error class: {error_class}; "
            "columnar corpora only)",
        )

    verify = sub.add_parser(
        "verify", help="re-read the corrupted corpus and check the counts"
    )
    verify.add_argument("--dir", required=True, help="dataset directory")
    verify.add_argument(
        "--mode", default="lenient", choices=("lenient", "repair"),
        help="ingestion policy to verify under (default lenient)",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return {"inject": _cmd_inject, "verify": _cmd_verify}[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
