"""Diff two pipeline run reports; fail on funnel drift or stage slowdown.

The CI perf/coverage gate's comparator::

    PYTHONPATH=src python tools/check_report.py baseline.json candidate.json

Exit status 0 means the candidate report is schema-valid, its
deterministic view (corpus, snapshots, options, per-snapshot funnel
counts) is **byte-identical** to the baseline's, and no pipeline stage
got slower than ``--max-stage-regression`` times the baseline (stages
faster than ``--min-stage-seconds`` in the baseline are ignored — their
timing is noise).  Any drift in the funnel counts is an exact failure:
candidate/confirmed/valid counts are deterministic functions of the
inputs and methodology, so *any* change means the methodology changed.

Timing comparisons only make sense between like-for-like runs: stage
seconds are summed across workers, so a ``jobs=2`` run legitimately
books ~2x the aggregate CPU of a ``jobs=1`` run while finishing sooner.
When the two reports' executor configurations differ the timing gate is
skipped automatically and only the funnel is compared; ``--no-timing``
forces that behaviour even for same-executor reports (e.g. different
machines, or a warm-cache run whose skipped stages never book seconds).

``--expect-cache-hits`` additionally requires the candidate to report a
nonzero stage-artifact cache hit ratio (its ``stage_cache`` section) —
the CI warm-cache job runs the pipeline twice against one ``--cache-dir``
and gates the second report on exactly this.

``--expect-signals`` additionally requires the candidate's ``signals``
section to prove the multi-signal confirm engine actually ran: every
signal configured in the report's options must have booked at least one
verdict (confirm + reject + abstain > 0).  A signal that was configured
but never consulted is a wiring bug, not a quiet no-op.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Iterator

from repro.obs.report import deterministic_view, load_report, validate_report

__all__ = ["build_parser", "compare_reports", "diff_deterministic", "main"]

#: Default slowdown tolerance: candidate stage time may be up to 1.6x the
#: baseline before the gate trips (CI runners are noisy neighbours).
DEFAULT_MAX_REGRESSION = 1.6

#: Stages cheaper than this in the baseline are exempt from the timing
#: gate — a 3 ms stage doubling is scheduler noise, not a regression.
DEFAULT_MIN_SECONDS = 0.05


def diff_deterministic(baseline: dict, candidate: dict, limit: int = 20) -> list[str]:
    """Human-readable paths where the deterministic views differ."""

    def walk(a, b, path: str) -> Iterator[str]:
        if type(a) is not type(b):
            yield f"{path}: type {type(a).__name__} != {type(b).__name__}"
        elif isinstance(a, dict):
            for key in sorted(set(a) | set(b)):
                if key not in a:
                    yield f"{path}.{key}: only in candidate"
                elif key not in b:
                    yield f"{path}.{key}: only in baseline"
                else:
                    yield from walk(a[key], b[key], f"{path}.{key}")
        elif isinstance(a, list):
            if a != b:
                yield f"{path}: {a!r} != {b!r}"
        elif a != b:
            yield f"{path}: baseline {a!r} != candidate {b!r}"

    differences = []
    for difference in walk(
        deterministic_view(baseline), deterministic_view(candidate), "report"
    ):
        differences.append(difference)
        if len(differences) >= limit:
            differences.append("... (further differences suppressed)")
            break
    return differences


def timing_comparable(baseline: dict, candidate: dict) -> bool:
    """Whether stage seconds mean the same thing in both reports: same
    executor kind and worker count (aggregate CPU scales with workers)."""
    a, b = baseline.get("executor", {}), candidate.get("executor", {})
    return (a.get("kind"), a.get("jobs")) == (b.get("kind"), b.get("jobs"))


def compare_reports(
    baseline: dict,
    candidate: dict,
    max_stage_regression: float = DEFAULT_MAX_REGRESSION,
    min_stage_seconds: float = DEFAULT_MIN_SECONDS,
    check_timing: bool = True,
    expect_cache_hits: bool = False,
    expect_signals: bool = False,
) -> list[str]:
    """Every reason the candidate fails the gate (empty = pass)."""
    problems = [f"baseline: {p}" for p in validate_report(baseline)]
    problems += [f"candidate: {p}" for p in validate_report(candidate)]
    if problems:
        return problems

    if json.dumps(deterministic_view(baseline), sort_keys=True) != json.dumps(
        deterministic_view(candidate), sort_keys=True
    ):
        problems.append(
            "funnel drift: deterministic views differ "
            "(counts must match exactly across runs/executors)"
        )
        problems += [f"  {d}" for d in diff_deterministic(baseline, candidate)]

    if check_timing and not timing_comparable(baseline, candidate):
        check_timing = False
    if check_timing:
        base_stages = baseline["stages"]
        cand_stages = candidate["stages"]
        for stage, entry in sorted(base_stages.items()):
            base_seconds = entry["seconds"]
            if base_seconds < min_stage_seconds:
                continue
            if stage not in cand_stages:
                problems.append(f"stage {stage!r} missing from candidate report")
                continue
            cand_seconds = cand_stages[stage]["seconds"]
            if cand_seconds > base_seconds * max_stage_regression:
                problems.append(
                    f"stage {stage!r} regressed: {cand_seconds:.3f}s vs "
                    f"baseline {base_seconds:.3f}s "
                    f"(> {max_stage_regression:.2f}x threshold)"
                )

    if expect_cache_hits:
        stage_cache = candidate.get("stage_cache", {})
        hits = stage_cache.get("hits", 0)
        hit_rate = stage_cache.get("hit_rate", 0.0)
        if not hits or not hit_rate:
            problems.append(
                "expected stage-cache hits but the candidate reports "
                f"hits={hits} hit_rate={hit_rate} — the warm run did not "
                "reuse any artifacts"
            )

    if expect_signals:
        section = candidate.get("signals", {})
        configured = candidate.get("options", {}).get("signals", [])
        if not configured:
            problems.append(
                "expected signal verdicts but the candidate's options name "
                "no configured signals"
            )
        verdicts = section.get("verdicts", {})
        for signal in configured:
            booked = sum(verdicts.get(signal, {}).values())
            if not booked:
                problems.append(
                    f"signal {signal!r} is configured but booked no verdicts "
                    "— the confirm stage never consulted it"
                )
    return problems


def build_parser() -> argparse.ArgumentParser:
    """The gate's argparse parser (exposed so the documentation tests
    can validate every flag against the docs)."""
    parser = argparse.ArgumentParser(
        prog="check_report",
        description="Compare two repro run reports (funnel drift is an "
        "exact failure; stage-time regressions fail beyond a threshold)."
    )
    parser.add_argument("baseline", help="baseline report JSON")
    parser.add_argument("candidate", help="candidate report JSON")
    parser.add_argument(
        "--max-stage-regression",
        type=float,
        default=DEFAULT_MAX_REGRESSION,
        metavar="FACTOR",
        help=f"fail when a stage exceeds FACTOR x baseline seconds "
        f"(default {DEFAULT_MAX_REGRESSION})",
    )
    parser.add_argument(
        "--min-stage-seconds",
        type=float,
        default=DEFAULT_MIN_SECONDS,
        metavar="SECONDS",
        help=f"ignore stages under SECONDS in the baseline "
        f"(default {DEFAULT_MIN_SECONDS})",
    )
    parser.add_argument(
        "--no-timing",
        action="store_true",
        help="compare funnel shape only (reports from different machines, "
        "or warm-cache runs whose skipped stages book no seconds)",
    )
    parser.add_argument(
        "--expect-cache-hits",
        action="store_true",
        help="fail unless the candidate reports a nonzero stage-artifact "
        "cache hit ratio (the CI warm-cache gate)",
    )
    parser.add_argument(
        "--expect-signals",
        action="store_true",
        help="fail unless every signal configured in the candidate's "
        "options booked at least one verdict in its signals section "
        "(the CI signals gate)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)

    baseline = load_report(args.baseline)
    candidate = load_report(args.candidate)
    problems = compare_reports(
        baseline,
        candidate,
        max_stage_regression=args.max_stage_regression,
        min_stage_seconds=args.min_stage_seconds,
        check_timing=not args.no_timing,
        expect_cache_hits=args.expect_cache_hits,
        expect_signals=args.expect_signals,
    )
    if problems:
        print(f"FAIL: {args.candidate} vs baseline {args.baseline}")
        for problem in problems:
            print(f"  {problem}")
        return 1
    timed = not args.no_timing and timing_comparable(baseline, candidate)
    suffix = (
        "identical funnel; stage times within threshold"
        if timed
        else "identical funnel; timing skipped (executors differ)"
        if not args.no_timing
        else "identical funnel; timing skipped (--no-timing)"
    )
    print(f"OK: {args.candidate} matches {args.baseline} ({suffix})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
